package core

// Result-cache properties: a cache-hit grid renders byte-identical to a
// cold uncached run for every study type, at any worker count and any
// eviction policy; cached node results are field-for-field equal to
// simulated ones; and the codec round-trips both value kinds exactly.

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"sst/internal/cache"
	"sst/internal/sim"
)

func csvOf(t *testing.T, r Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

func newTestCache(t *testing.T, policy cache.PolicyType) *cache.Cache {
	t.Helper()
	c, err := NewSweepCache(256, policy, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var allPolicies = []cache.PolicyType{cache.FIFO, cache.LRU, cache.LFU, cache.TinyLFU}

// TestCachedPointBitIdentical runs every study type cold (no cache), then
// twice against a cache — miss pass, then hit pass — and requires the hit
// pass's rendered CSV to be byte-identical to the cold run's. The DSE
// study additionally sweeps the full eviction-policy × worker-count
// matrix; the remaining studies rotate through the policies so each policy
// backs at least one study.
func TestCachedPointBitIdentical(t *testing.T) {
	apps, techs, widths := []string{"stream"}, []string{"ddr3-1333"}, []int{1, 2}
	coldGrid, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	coldCSV := csvOf(t, coldGrid)

	for _, policy := range allPolicies {
		for _, workers := range []int{1, 3} {
			t.Run("dse/"+policy.String(), func(t *testing.T) {
				c := newTestCache(t, policy)
				// Arena-reusing workers must not perturb the cached bytes:
				// the miss pass simulates on warm arenas, the hit pass reads
				// back, and both must match the arena-free cold run.
				opts := SweepOptions{Workers: workers, Cache: c, Arena: NewArenaPool()}
				if _, err := MemTechWidthSweep(apps, techs, widths, Small, opts); err != nil {
					t.Fatal(err)
				}
				if got := c.Stats(); got.Misses != int64(len(widths)) || got.Hits != 0 {
					t.Fatalf("cold pass stats %+v, want %d misses 0 hits", got, len(widths))
				}
				warm, err := MemTechWidthSweep(apps, techs, widths, Small, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := c.Stats(); got.Hits != int64(len(widths)) {
					t.Fatalf("hit pass stats %+v, want %d hits", got, len(widths))
				}
				if gotCSV := csvOf(t, warm); !bytes.Equal(gotCSV, coldCSV) {
					t.Errorf("policy %s workers %d: cached grid CSV differs from cold run\n got %s\nwant %s",
						policy, workers, gotCSV, coldCSV)
				}
				// Field-for-field equality on the grid itself, modulo the
				// one host-time field.
				for i := range warm.Points {
					w, r := *warm.Points[i].Result, *coldGrid.Points[i].Result
					w.HostSeconds, r.HostSeconds = 0, 0
					if !reflect.DeepEqual(w, r) {
						t.Errorf("point %d diverged\n got %+v\nwant %+v", i, w, r)
					}
				}
			})
		}
	}

	// The remaining study types, each under a different policy; every study
	// runs a miss pass and a hit pass against one cache.
	type study struct {
		name string
		run  func(opts SweepOptions) (Result, error)
	}
	studies := []study{
		{"memspeed", func(o SweepOptions) (Result, error) {
			return MemSpeedStudy([]string{"ddr3-1066", "ddr3-1333"}, Small, o)
		}},
		{"corescaling", func(o SweepOptions) (Result, error) {
			return CoreScalingStudy([]string{"stream"}, []int{1, 2}, Small, o)
		}},
		{"cachestudy", func(o SweepOptions) (Result, error) {
			return CacheStudy(Small, o)
		}},
		{"pim", func(o SweepOptions) (Result, error) {
			return PIMStudy([]string{"gups"}, Small, o)
		}},
		{"weakscaling", func(o SweepOptions) (Result, error) {
			return WeakScalingStudy([]int{4, 8}, 1, o)
		}},
		{"netdegradation", func(o SweepOptions) (Result, error) {
			cfg := NetStudyConfig{Nodes: 8, Fractions: []float64{1, 0.5}, Steps: 2}
			return NetDegradationStudy(cfg, o)
		}},
	}
	for si, s := range studies {
		policy := allPolicies[si%len(allPolicies)]
		t.Run(s.name+"/"+policy.String(), func(t *testing.T) {
			cold, err := s.run(SweepOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			c := newTestCache(t, policy)
			if _, err := s.run(SweepOptions{Workers: 2, Cache: c}); err != nil {
				t.Fatal(err)
			}
			if got := c.Stats(); got.Hits != 0 || got.Misses == 0 {
				t.Fatalf("cold pass stats %+v, want misses only", got)
			}
			warm, err := s.run(SweepOptions{Workers: 2, Cache: c})
			if err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.Hits != st.Misses {
				t.Fatalf("hit pass stats %+v, want hits == misses (every point a hit)", st)
			}
			if got, want := csvOf(t, warm), csvOf(t, cold); !bytes.Equal(got, want) {
				t.Errorf("cached study CSV differs from cold run\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestRunMachineCached pins the hit/miss contract directly: second call
// hits, results match field-for-field (modulo host time), and the returned
// copies do not alias the cache's stored value.
func TestRunMachineCached(t *testing.T) {
	c := newTestCache(t, cache.LRU)
	cfg := SweepMachine("stream", "ddr3-1333", 1, Small)
	r1, hit, err := RunMachineCached(context.Background(), c, cfg)
	if err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v", hit, err)
	}
	r2, hit, err := RunMachineCached(context.Background(), c, cfg)
	if err != nil || !hit {
		t.Fatalf("second run: hit=%v err=%v", hit, err)
	}
	a, b := *r1, *r2
	a.HostSeconds, b.HostSeconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("cached result diverged\n got %+v\nwant %+v", b, a)
	}
	// Mutating a returned result must not poison the cache.
	r2.IPC = -1
	r3, hit, err := RunMachineCached(context.Background(), c, cfg)
	if err != nil || !hit {
		t.Fatalf("third run: hit=%v err=%v", hit, err)
	}
	if r3.IPC == -1 {
		t.Error("cached value aliases a previously returned result")
	}
	// Nil cache degrades to a plain run.
	r4, hit, err := RunMachineCached(context.Background(), nil, cfg)
	if err != nil || hit || r4 == nil {
		t.Fatalf("nil-cache run: res=%v hit=%v err=%v", r4, hit, err)
	}
}

// TestResultCodecRoundTrip: both cached value kinds survive
// encode→decode exactly (the persistent tier depends on it).
func TestResultCodecRoundTrip(t *testing.T) {
	codec := ResultCodec()
	res, err := RunMachine(SweepMachine("stream", "ddr3-1333", 1, Small))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := codec.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back.(*NodeResult)) {
		t.Errorf("NodeResult did not round-trip\n got %+v\nwant %+v", back, res)
	}

	blob, err = codec.Encode(sim.Time(123456789))
	if err != nil {
		t.Fatal(err)
	}
	back, err = codec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.(sim.Time) != sim.Time(123456789) {
		t.Errorf("sim.Time round-trip = %v", back)
	}

	if _, err := codec.Encode(struct{}{}); err == nil {
		t.Error("codec accepted an unsupported type")
	}
}

// TestSweepCacheWarmStartAcrossInstances: the persistent tier makes a new
// cache instance (a new process, in CLI terms) hit on points simulated by
// a previous one.
func TestSweepCacheWarmStartAcrossInstances(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	c1, err := NewSweepCache(64, cache.LRU, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepMachine("stream", "ddr3-1333", 2, Small)
	ref, hit, err := RunMachineCached(context.Background(), c1, cfg)
	if err != nil || hit {
		t.Fatalf("seed run: hit=%v err=%v", hit, err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := NewSweepCache(64, cache.LRU, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", st.WarmStarts)
	}
	got, hit, err := RunMachineCached(context.Background(), c2, cfg)
	if err != nil || !hit {
		t.Fatalf("warm-started run: hit=%v err=%v", hit, err)
	}
	a, b := *ref, *got
	a.HostSeconds, b.HostSeconds = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("file-tier result diverged\n got %+v\nwant %+v", b, a)
	}
}
