// Package isa defines SR1, gosst's small RISC instruction set, together
// with a binary encoder/decoder, a two-pass assembler, a disassembler and a
// functional interpreter.
//
// SR1 exists so the simulator has an execution-driven front-end: real
// programs with real data-dependent control flow and addresses, rather than
// only traces and synthetic streams. It is deliberately minimal — 32
// general registers also used for floating point (bit-pattern aliased),
// fixed 32-bit instruction words, load/store architecture.
package isa

import "fmt"

// Opcode enumerates SR1 operations.
type Opcode uint8

const (
	NOP Opcode = iota
	HALT

	// R-type integer: rd = rs1 op rs2.
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT  // set if rs1 < rs2 (signed)
	SLTU // set if rs1 < rs2 (unsigned)

	// I-type integer: rd = rs1 op imm (sign-extended 16-bit).
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI // rd = imm << 16 (rs1 ignored)

	// R-type floating point (registers hold float64 bit patterns).
	FADD
	FSUB
	FMUL
	FDIV
	FMADD // rd = rd + rs1*rs2 (fused accumulate)
	FSLT  // rd = 1 if f(rs1) < f(rs2)
	CVTIF // rd = float64(int64(rs1))
	CVTFI // rd = int64(float64(rs1))

	// Memory: address = rs1 + imm.
	LD // 8-byte load
	LW // 4-byte load (sign-extended)
	LB // 1-byte load (sign-extended)
	SD // 8-byte store (stores rd)
	SW // 4-byte store
	SB // 1-byte store

	// Control: branches compare rs1, rs2; target = pc + 4*imm.
	BEQ
	BNE
	BLT
	BGE
	JAL  // rd = pc+4; pc += 4*imm21
	JALR // rd = pc+4; pc = rs1 + imm

	numOpcodes
)

// Format describes an opcode's operand shape.
type Format uint8

const (
	// FormatNone has no operands (nop, halt).
	FormatNone Format = iota
	// FormatR is "op rd, rs1, rs2".
	FormatR
	// FormatI is "op rd, rs1, imm".
	FormatI
	// FormatLoad is "op rd, imm(rs1)".
	FormatLoad
	// FormatStore is "op rd, imm(rs1)" (rd is the source).
	FormatStore
	// FormatBranch is "op rs1, rs2, target".
	FormatBranch
	// FormatJ is "op rd, target".
	FormatJ
	// FormatLUI is "op rd, imm".
	FormatLUI
)

// opInfo is the per-opcode metadata table driving the assembler,
// disassembler and interpreter dispatch.
type opInfo struct {
	name   string
	format Format
	// memBytes is the access size for loads/stores, 0 otherwise.
	memBytes uint8
	// isFloat marks floating-point execution class.
	isFloat bool
}

var opTable = [numOpcodes]opInfo{
	NOP:   {"nop", FormatNone, 0, false},
	HALT:  {"halt", FormatNone, 0, false},
	ADD:   {"add", FormatR, 0, false},
	SUB:   {"sub", FormatR, 0, false},
	MUL:   {"mul", FormatR, 0, false},
	DIV:   {"div", FormatR, 0, false},
	REM:   {"rem", FormatR, 0, false},
	AND:   {"and", FormatR, 0, false},
	OR:    {"or", FormatR, 0, false},
	XOR:   {"xor", FormatR, 0, false},
	SLL:   {"sll", FormatR, 0, false},
	SRL:   {"srl", FormatR, 0, false},
	SRA:   {"sra", FormatR, 0, false},
	SLT:   {"slt", FormatR, 0, false},
	SLTU:  {"sltu", FormatR, 0, false},
	ADDI:  {"addi", FormatI, 0, false},
	ANDI:  {"andi", FormatI, 0, false},
	ORI:   {"ori", FormatI, 0, false},
	XORI:  {"xori", FormatI, 0, false},
	SLLI:  {"slli", FormatI, 0, false},
	SRLI:  {"srli", FormatI, 0, false},
	SRAI:  {"srai", FormatI, 0, false},
	SLTI:  {"slti", FormatI, 0, false},
	LUI:   {"lui", FormatLUI, 0, false},
	FADD:  {"fadd", FormatR, 0, true},
	FSUB:  {"fsub", FormatR, 0, true},
	FMUL:  {"fmul", FormatR, 0, true},
	FDIV:  {"fdiv", FormatR, 0, true},
	FMADD: {"fmadd", FormatR, 0, true},
	FSLT:  {"fslt", FormatR, 0, true},
	CVTIF: {"cvtif", FormatR, 0, true},
	CVTFI: {"cvtfi", FormatR, 0, true},
	LD:    {"ld", FormatLoad, 8, false},
	LW:    {"lw", FormatLoad, 4, false},
	LB:    {"lb", FormatLoad, 1, false},
	SD:    {"sd", FormatStore, 8, false},
	SW:    {"sw", FormatStore, 4, false},
	SB:    {"sb", FormatStore, 1, false},
	BEQ:   {"beq", FormatBranch, 0, false},
	BNE:   {"bne", FormatBranch, 0, false},
	BLT:   {"blt", FormatBranch, 0, false},
	BGE:   {"bge", FormatBranch, 0, false},
	JAL:   {"jal", FormatJ, 0, false},
	JALR:  {"jalr", FormatI, 0, false},
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if o < numOpcodes {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Opcode) Valid() bool { return o < numOpcodes }

// Info accessors.

// Format returns the operand shape.
func (o Opcode) Format() Format { return opTable[o].format }

// MemBytes returns the memory access size (0 for non-memory ops).
func (o Opcode) MemBytes() int { return int(opTable[o].memBytes) }

// IsLoad reports whether o reads memory.
func (o Opcode) IsLoad() bool { return o == LD || o == LW || o == LB }

// IsStore reports whether o writes memory.
func (o Opcode) IsStore() bool { return o == SD || o == SW || o == SB }

// IsFloat reports whether o executes in the floating-point class.
func (o Opcode) IsFloat() bool { return opTable[o].isFloat }

// IsBranch reports whether o may redirect control flow.
func (o Opcode) IsBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE, JAL, JALR:
		return true
	}
	return false
}

// Instr is one decoded instruction.
type Instr struct {
	Op           Opcode
	Rd, Rs1, Rs2 uint8
	Imm          int32 // sign-extended immediate (16-bit, or 21-bit for JAL)
}

// Word encodes the instruction into a 32-bit word:
//
//	[31:26] opcode  [25:21] rd  [20:16] rs1  [15:11] rs2 / imm[15:11]
//	[15:0] imm16 (I/branch forms)   [20:0] imm21 (JAL)
func (i Instr) Word() uint32 {
	w := uint32(i.Op) << 26
	switch i.Op.Format() {
	case FormatJ:
		w |= uint32(i.Rd&31) << 21
		w |= uint32(i.Imm) & 0x1fffff
	case FormatR:
		w |= uint32(i.Rd&31) << 21
		w |= uint32(i.Rs1&31) << 16
		w |= uint32(i.Rs2&31) << 11
	case FormatBranch:
		w |= uint32(i.Rs1&31) << 21
		w |= uint32(i.Rs2&31) << 16
		w |= uint32(i.Imm) & 0xffff
	case FormatNone:
	default: // I, Load, Store, LUI
		w |= uint32(i.Rd&31) << 21
		w |= uint32(i.Rs1&31) << 16
		w |= uint32(i.Imm) & 0xffff
	}
	return w
}

// Decode splits a 32-bit word back into an Instr. Unknown opcodes yield an
// error.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> 26)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d in %#08x", uint8(op), w)
	}
	var in Instr
	in.Op = op
	switch op.Format() {
	case FormatJ:
		in.Rd = uint8(w >> 21 & 31)
		in.Imm = signExtend(w&0x1fffff, 21)
	case FormatR:
		in.Rd = uint8(w >> 21 & 31)
		in.Rs1 = uint8(w >> 16 & 31)
		in.Rs2 = uint8(w >> 11 & 31)
	case FormatBranch:
		in.Rs1 = uint8(w >> 21 & 31)
		in.Rs2 = uint8(w >> 16 & 31)
		in.Imm = signExtend(w&0xffff, 16)
	case FormatNone:
	default:
		in.Rd = uint8(w >> 21 & 31)
		in.Rs1 = uint8(w >> 16 & 31)
		in.Imm = signExtend(w&0xffff, 16)
	}
	return in, nil
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op.Format() {
	case FormatNone:
		return i.Op.String()
	case FormatR:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FormatI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case FormatLoad, FormatStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case FormatBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case FormatJ:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case FormatLUI:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	default:
		return fmt.Sprintf("%s ?", i.Op)
	}
}
