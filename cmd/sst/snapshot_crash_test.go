package main

// Crash consistency of the -snapshot-every surface: a sliced system run
// is crashed after every storage operation of every snapshot save, and
// whatever file survives must be a complete, loadable snapshot — the
// previous interval's or the new one, never a torn container. (That the
// restored run then reproduces the uninterrupted run bit-for-bit is
// asserted by internal/par's and internal/dnoc's snapshot tests; here we
// pin the storage layer's half of the contract.)

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sst/internal/iofault"
	"sst/internal/par"
	"sst/internal/sim"
)

func TestCrashPointsSnapshotSave(t *testing.T) {
	dir := t.TempDir()
	sysPath := filepath.Join(dir, "s.json")
	if err := os.WriteFile(sysPath, []byte(testSystem), 0o644); err != nil {
		t.Fatal(err)
	}
	restorable := 0
	n, err := iofault.Explore(
		func() (*iofault.MemFS, error) { return iofault.NewMemFS(41), nil },
		func(m *iofault.MemFS) error {
			return runSystem(sysPath, obsFlags{}, 1, par.SyncPairwise,
				snapCfg{every: 200 * sim.Microsecond, out: "run.snap", fs: m})
		},
		func(cp iofault.CrashPoint) error {
			if cp.WorkloadErr != nil && !errors.Is(cp.WorkloadErr, iofault.ErrCrashed) {
				return fmt.Errorf("crashed sliced run error is untyped: %v", cp.WorkloadErr)
			}
			if _, err := cp.Image.ReadFile("run.snap"); err != nil {
				if os.IsNotExist(err) {
					return nil // crashed before the first snapshot was durable
				}
				return err
			}
			// A surviving snapshot must restore and run to completion.
			if err := runSystem(sysPath, obsFlags{}, 1, par.SyncPairwise,
				snapCfg{restore: "run.snap", fs: cp.Image}); err != nil {
				return fmt.Errorf("surviving snapshot failed to restore: %v\n%s", err, cp.Image.Dump())
			}
			restorable++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Each save is create/write/sync/rename/syncdir; a multi-interval run
	// must expose at least two full save chains.
	if n < 10 {
		t.Fatalf("explored only %d storage ops; expected several snapshot saves", n)
	}
	if restorable == 0 {
		t.Fatal("no crash point left a restorable snapshot")
	}
}
