package fault

import (
	"strings"
	"testing"

	"sst/internal/sim"
)

func TestStreamSeedStableAndDistinct(t *testing.T) {
	if StreamSeed(7, "link0.a->") != StreamSeed(7, "link0.a->") {
		t.Fatal("StreamSeed not stable for identical inputs")
	}
	seen := map[uint64]string{}
	for _, name := range []string{"link0.a->", "link0.b->", "link1.a->", "mtbf:node"} {
		s := StreamSeed(7, name)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, name)
		}
		seen[s] = name
	}
	if StreamSeed(1, "x") == StreamSeed(2, "x") {
		t.Fatal("root seed does not change the stream")
	}
}

// killable is a minimal Killable component for KillAt tests.
type killable struct {
	name   string
	killed bool
}

func (k *killable) Name() string { return k.name }
func (k *killable) Kill()        { k.killed = true }

// plain is registered but not Killable.
type plain struct{ name string }

func (p *plain) Name() string { return p.name }

func TestKillAt(t *testing.T) {
	s := sim.New()
	k := &killable{name: "node0"}
	s.Add(k)
	s.Add(&plain{name: "rock"})

	rec, err := KillAt(s, "node0", 5*sim.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if !k.killed || !rec.Done {
		t.Fatalf("kill did not fire: killed=%v done=%v", k.killed, rec.Done)
	}

	if _, err := KillAt(s, "ghost", 10*sim.Nanosecond); err == nil {
		t.Error("unregistered target accepted")
	}
	if _, err := KillAt(s, "rock", 10*sim.Nanosecond); err == nil || !strings.Contains(err.Error(), "not Killable") {
		t.Errorf("non-Killable target accepted: %v", err)
	}
	if _, err := KillAt(s, "node0", 1*sim.Nanosecond); err == nil {
		t.Error("kill in the past accepted")
	}
}

func TestLinkFaultsValidate(t *testing.T) {
	bad := []LinkFaults{
		{DropP: -0.1},
		{CorruptP: 1.5},
		{DelayP: 0.5}, // missing MaxDelay
	}
	for i, f := range bad {
		if f.Validate() == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, f)
		}
	}
	if err := (LinkFaults{DropP: 0.5, DelayP: 0.1, MaxDelay: sim.Nanosecond}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// runInjected drives count payloads through an injected local link and
// returns the received values plus the injector.
func runInjected(t *testing.T, seed uint64, cfg LinkFaults, count int) ([]int, Trace) {
	t.Helper()
	s := sim.New()
	a, b := s.Connect("wire", 10*sim.Nanosecond)
	var got []int
	b.SetHandler(func(p any) {
		if v, ok := p.(int); ok {
			got = append(got, v)
		} else {
			got = append(got, -1) // Corrupted non-int marker
		}
	})
	a.SetHandler(func(any) {})
	inj, err := InjectLink(a.Link(), seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		i := i
		s.Engine().Schedule(sim.Time(i)*sim.Nanosecond, func(any) { a.Send(i) }, nil)
	}
	s.RunAll()
	return got, inj.TraceA()
}

func TestInjectLinkDeterministicTrace(t *testing.T) {
	cfg := LinkFaults{DropP: 0.2, CorruptP: 0.2, DelayP: 0.3, MaxDelay: 5 * sim.Nanosecond, Record: true}
	got1, tr1 := runInjected(t, 42, cfg, 400)
	got2, tr2 := runInjected(t, 42, cfg, 400)
	if len(tr1) == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
	if len(got1) != len(got2) || len(tr1) != len(tr2) {
		t.Fatalf("same seed diverged: %d/%d payloads, %d/%d faults",
			len(got1), len(got2), len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("trace entry %d differs: %+v vs %+v", i, tr1[i], tr2[i])
		}
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("payload %d differs: %v vs %v", i, got1[i], got2[i])
		}
	}
	got3, _ := runInjected(t, 43, cfg, 400)
	if len(got3) == len(got1) {
		same := true
		for i := range got1 {
			if got1[i] != got3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestInjectLinkStatsAndClamp(t *testing.T) {
	cfg := LinkFaults{DropP: 0.5, Record: true}
	got, tr := runInjected(t, 7, cfg, 1000)
	s := sim.New()
	a, _ := s.Connect("w2", sim.Nanosecond)
	inj, err := InjectLink(a.Link(), 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InjectLink(a.Link(), 7, cfg); err == nil {
		t.Error("double injection accepted")
	}
	_ = inj
	if len(got)+len(tr) != 1000 {
		t.Fatalf("drops (%d) + deliveries (%d) != sends (1000)", len(tr), len(got))
	}
	if len(tr) < 400 || len(tr) > 600 {
		t.Errorf("drop rate wildly off 0.5: %d/1000", len(tr))
	}
	for _, ev := range tr {
		if ev.Kind != Drop || ev.Target != "wire.a->" {
			t.Fatalf("unexpected trace entry %+v", ev)
		}
	}
}

func TestCorruptKeepsIntTyped(t *testing.T) {
	rng := sim.NewRNG(1)
	v := corrupt(17, rng)
	if _, ok := v.(int); !ok {
		t.Fatalf("corrupt(int) returned %T", v)
	}
	if v == 17 {
		t.Fatal("corrupt(int) did not flip a bit")
	}
	w := corrupt("hello", rng)
	c, ok := w.(Corrupted)
	if !ok || c.Payload != "hello" {
		t.Fatalf("corrupt(string) = %#v, want Corrupted wrapper", w)
	}
}
