package par

import (
	"fmt"
	"strings"

	"sst/internal/sim"
)

// SyncMode selects how conservative window horizons are derived from the
// partitioned link graph.
type SyncMode int

const (
	// SyncPairwise derives each rank's horizon from the pairwise lookahead
	// matrix: rank i may advance to min over ranks j that can reach it of
	// (j's base time + the shortest-path latency j→i). Ranks coupled only
	// through high-latency links get wide windows regardless of how small
	// the minimum latency elsewhere in the machine is. This is the default.
	SyncPairwise SyncMode = iota
	// SyncGlobal is the classic conservative barrier: every rank advances
	// through one shared window equal to the single minimum cross-rank
	// link latency. Kept as the comparison baseline (`-sync global`).
	SyncGlobal
	// SyncSpeculative lets ranks execute optimistically past their pairwise
	// horizon, checkpointing engine state through the snapshot codec at leg
	// boundaries. A straggler cross-rank event triggers a rollback to the
	// last checkpoint at or below the committed frontier and a deterministic
	// replay; only committed events are ever released to other ranks, so no
	// anti-messages exist. Requires EnableSnapshots and a fully
	// checkpointable model when cross-rank links are present.
	SyncSpeculative
	// SyncAdaptive is SyncSpeculative with a per-rank governor: a rank whose
	// rollback rate spikes is demoted to its pairwise-conservative horizon
	// for a cooldown, then re-promoted. The demotion decision depends only
	// on simulation content, never host timing, so results stay
	// bit-identical to every other mode.
	SyncAdaptive
)

// syncModeNames is the registry of mode spellings, indexed by SyncMode.
// String, ParseSyncMode and SyncModeNames all derive from it, so the CLI
// flag help, the parser and its error message can never drift apart.
var syncModeNames = [...]string{
	SyncPairwise:    "pairwise",
	SyncGlobal:      "global",
	SyncSpeculative: "speculative",
	SyncAdaptive:    "adaptive",
}

// SyncModeNames returns the flag spellings of every registered mode, in
// declaration order. CLI flag help should be built from this list.
func SyncModeNames() []string {
	return append([]string(nil), syncModeNames[:]...)
}

// Speculative reports whether the mode executes optimistically (and thus
// needs snapshots enabled before the model is built).
func (m SyncMode) Speculative() bool {
	return m == SyncSpeculative || m == SyncAdaptive
}

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	if int(m) >= 0 && int(m) < len(syncModeNames) {
		return syncModeNames[m]
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode parses a -sync flag value. The error lists every valid
// spelling so a typo on the command line is self-correcting.
func ParseSyncMode(s string) (SyncMode, error) {
	for m, name := range syncModeNames {
		if s == name {
			return SyncMode(m), nil
		}
	}
	return 0, fmt.Errorf("par: unknown sync mode %q (want %s)", s, strings.Join(syncModeNames[:], ", "))
}

// SetSyncMode selects the synchronization mode for subsequent Run calls.
// All modes produce bit-identical simulation results; they differ only in
// how far each rank may run between barriers and whether that execution is
// provisional (speculative/adaptive) or final (global/pairwise). Must not
// be called while a Run is in flight.
func (r *Runner) SetSyncMode(m SyncMode) { r.mode = m }

// SyncMode returns the active synchronization mode.
func (r *Runner) SyncMode() SyncMode { return r.mode }

// recordLink folds one cross-rank link into the direct-latency adjacency
// used to build the pairwise lookahead matrix.
func (r *Runner) recordLink(a, b int, latency sim.Time) {
	if latency < r.minLat[a][b] {
		r.minLat[a][b] = latency
		r.minLat[b][a] = latency
	}
	r.laDirty = true
}

// lookaheadMatrix returns the pairwise lookahead matrix la[src][dst]: the
// minimum latency over all link paths from a rank to another, i.e. the
// earliest any event leaving src's current base time could affect dst —
// including transitively, through handlers on intermediate ranks that
// forward with zero think time. Entries are sim.TimeInfinity for rank pairs
// with no connecting path and 0 on the diagonal. The matrix is recomputed
// (Floyd–Warshall over the direct-link adjacency, O(ranks³)) only when
// Connect has added links since the last call.
func (r *Runner) lookaheadMatrix() [][]sim.Time {
	if !r.laDirty && r.la != nil {
		return r.la
	}
	n := len(r.ranks)
	la := make([][]sim.Time, n)
	for i := range la {
		la[i] = append([]sim.Time(nil), r.minLat[i]...)
		la[i][i] = 0
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := la[i][k]
			if ik == sim.TimeInfinity {
				continue
			}
			for j := 0; j < n; j++ {
				kj := la[k][j]
				if kj == sim.TimeInfinity {
					continue
				}
				if s := ik + kj; s >= ik && s < la[i][j] {
					la[i][j] = s
				}
			}
		}
	}
	r.la, r.laDirty = la, false
	return la
}

// LookaheadMatrix returns a copy of the pairwise lookahead matrix (see
// lookaheadMatrix for its semantics). Diagnostic/testing accessor.
func (r *Runner) LookaheadMatrix() [][]sim.Time {
	la := r.lookaheadMatrix()
	out := make([][]sim.Time, len(la))
	for i := range la {
		out[i] = append([]sim.Time(nil), la[i]...)
	}
	return out
}

// PairLookahead returns the conservative lookahead from rank src to rank
// dst: the earliest an event leaving src can affect dst, relative to src's
// clock. sim.TimeInfinity when no link path connects them.
func (r *Runner) PairLookahead(src, dst int) sim.Time {
	if src < 0 || src >= len(r.ranks) || dst < 0 || dst >= len(r.ranks) {
		return sim.TimeInfinity
	}
	return r.lookaheadMatrix()[src][dst]
}

// rankLookahead is the width of rank i's inbound constraint: the minimum
// pairwise lookahead over ranks that can reach it. TimeInfinity when
// nothing can.
func (r *Runner) rankLookahead(la [][]sim.Time, i int) sim.Time {
	min := sim.TimeInfinity
	for j := range la {
		if j == i {
			continue
		}
		if l := la[j][i]; l < min {
			min = l
		}
	}
	return min
}

// remoteHeap is a per-destination staging min-heap of remote events in
// canonical (time, sent, srcRank, seq) order. Events parked here at an
// exchange are scheduled into the destination engine only once the
// destination's window horizon passes their timestamp, so the insertion
// order seen by the engine — and therefore same-timestamp tie-breaking —
// is identical no matter which barrier round carried the event across.
// That is what keeps results bit-identical between sync modes, whose
// window boundaries differ, and what matches the sequential reference,
// which inserts each delivery into the queue at its send time.
type remoteHeap []remoteEvent

func remoteLess(a, b *remoteEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.srcRank != b.srcRank {
		return a.srcRank < b.srcRank
	}
	return a.seq < b.seq
}

// minTime returns the earliest staged timestamp, or TimeInfinity.
func (h remoteHeap) minTime() sim.Time {
	if len(h) == 0 {
		return sim.TimeInfinity
	}
	return h[0].time
}

func (h *remoteHeap) push(ev remoteEvent) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !remoteLess(&q[i], &q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *remoteHeap) pop() remoteEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = remoteEvent{} // release payload/port references
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && remoteLess(&q[l], &q[min]) {
			min = l
		}
		if r < n && remoteLess(&q[r], &q[min]) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return top
}
