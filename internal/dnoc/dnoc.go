// Package dnoc runs an interconnection-network model distributed over the
// parallel runtime: routers are partitioned across par ranks, packets
// crossing a partition boundary travel through the runner's deterministic
// mailboxes, and per-hop timing is computed identically to the sequential
// noc.Network — so a distributed simulation produces the same per-message
// latencies as a single-engine one. This is the Structural Simulation
// Toolkit's headline parallel use case: the network is both the simulated
// system and the natural partitioning dimension.
//
// The conservative lookahead is the per-hop latency (link + router): a
// packet leaving rank A can never affect rank B sooner than that, exactly
// the property SST's conservative core exploits.
//
// All in-fabric work — packet hops, injections, local deliveries — is
// scheduled through one checkpoint-owned event set per rank, so a network
// built on a snapshot-enabled runner (par.Runner.EnableSnapshots before
// New) can be saved at a window barrier and restored into a freshly built
// twin: in-flight packets are plain data, never closures.
package dnoc

import (
	"fmt"

	"sst/internal/noc"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

// packet mirrors noc's wormhole-approximated transfer unit. Packets move
// between events by value: exactly one pending event references a packet at
// any time, so snapshots serialize them without aliasing concerns.
type packet struct {
	src, dst int
	size     int
	msgSize  int
	last     bool
	payload  any
	sentAt   sim.Time
	hops     int
}

// xfer is the cross-rank payload: a packet plus the router to continue at.
type xfer struct {
	p      packet
	router int
}

// devt is the per-rank event-set payload: a packet plus what to do with it.
type devt struct {
	kind   uint8 // devtHop or devtDeliver
	p      packet
	router int // continuation router for devtHop
}

const (
	devtHop uint8 = iota
	devtDeliver
)

func encodePacket(e *sim.Encoder, p packet) {
	e.I64(int64(p.src))
	e.I64(int64(p.dst))
	e.I64(int64(p.size))
	e.I64(int64(p.msgSize))
	e.Bool(p.last)
	sim.EncodePayload(e, p.payload)
	e.Time(p.sentAt)
	e.I64(int64(p.hops))
}

func decodePacket(d *sim.Decoder) (packet, error) {
	p := packet{
		src:     int(d.I64()),
		dst:     int(d.I64()),
		size:    int(d.I64()),
		msgSize: int(d.I64()),
		last:    d.Bool(),
	}
	payload, err := sim.DecodePayload(d)
	if err != nil {
		return p, err
	}
	p.payload = payload
	p.sentAt = d.Time()
	p.hops = int(d.I64())
	return p, d.Err()
}

func init() {
	sim.RegisterPayload("dnoc.xfer", xfer{},
		func(e *sim.Encoder, v any) {
			x := v.(xfer)
			encodePacket(e, x.p)
			e.I64(int64(x.router))
		},
		func(d *sim.Decoder) (any, error) {
			p, err := decodePacket(d)
			return xfer{p: p, router: int(d.I64())}, err
		})
	sim.RegisterPayload("dnoc.devt", devt{},
		func(e *sim.Encoder, v any) {
			ev := v.(devt)
			e.U64(uint64(ev.kind))
			encodePacket(e, ev.p)
			e.I64(int64(ev.router))
		},
		func(d *sim.Decoder) (any, error) {
			kind := uint8(d.U64())
			p, err := decodePacket(d)
			return devt{kind: kind, p: p, router: int(d.I64())}, err
		})
}

// dlink is one directed link's serialization state, owned by the source
// router's rank.
type dlink struct {
	freeAt sim.Time
	bytes  uint64
}

// rankView is one rank's checkpointable slice of the network: the rank's
// pending fabric events plus every piece of link/NIC/stats state its
// engine mutates.
type rankView struct {
	d     *Network
	rank  int
	evs   *sim.EventSet
	links []*dlink // directed links whose source router lives here
	nics  []*NIC   // NICs homed here, ascending node id
}

func (v *rankView) dispatch(pl any) {
	ev := pl.(devt)
	switch ev.kind {
	case devtHop:
		v.d.hop(ev.p, ev.router)
	case devtDeliver:
		v.d.deliver(ev.p)
	}
}

func (v *rankView) PendingOwned() int { return v.evs.PendingOwned() }

func (v *rankView) SaveState(enc *sim.Encoder) {
	v.evs.Save(enc)
	for _, l := range v.links {
		enc.Time(l.freeAt)
		enc.U64(l.bytes)
	}
	for _, nc := range v.nics {
		enc.Time(nc.freeAt)
	}
	v.d.regs[v.rank].SaveState(enc)
}

func (v *rankView) LoadState(dec *sim.Decoder) error {
	if err := v.evs.Load(dec); err != nil {
		return err
	}
	for _, l := range v.links {
		l.freeAt = dec.Time()
		l.bytes = dec.U64()
	}
	for _, nc := range v.nics {
		nc.freeAt = dec.Time()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	return v.d.regs[v.rank].LoadState(dec)
}

// Network is the distributed interconnect.
type Network struct {
	runner *par.Runner
	topo   noc.Topology
	cfg    noc.NetConfig
	part   []int // router -> rank

	links map[[2]int]*dlink
	// xmit[a][b] is the sending port of the a→b rank channel.
	xmit  map[int]map[int]*sim.Port
	nics  []*NIC
	views []*rankView

	// Per-rank stats registries keep rank goroutines from sharing
	// counters; Totals() merges after the run.
	regs     []*stats.Registry
	messages []*stats.Counter
	bytes    []*stats.Counter
	msgLat   []*stats.Histogram
}

// New builds the distributed network on the runner. partition maps each
// router to a rank; nil partitions round-robin. On a snapshot-enabled
// runner the network registers one checkpoint owner per rank.
func New(runner *par.Runner, topo noc.Topology, cfg noc.NetConfig, partition func(router int) int) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LinkLatency+cfg.RouterLatency == 0 {
		return nil, fmt.Errorf("dnoc: zero per-hop latency leaves no lookahead")
	}
	if partition == nil {
		partition = func(r int) int { return r % runner.NumRanks() }
	}
	d := &Network{
		runner: runner,
		topo:   topo,
		cfg:    cfg,
		links:  make(map[[2]int]*dlink),
		xmit:   make(map[int]map[int]*sim.Port),
	}
	d.part = make([]int, topo.NumRouters())
	for r := range d.part {
		rank := partition(r)
		if rank < 0 || rank >= runner.NumRanks() {
			return nil, fmt.Errorf("dnoc: router %d partitioned to invalid rank %d", r, rank)
		}
		d.part[r] = rank
	}
	for _, l := range topo.Links() {
		d.links[[2]int{l[0], l[1]}] = &dlink{}
		d.links[[2]int{l[1], l[0]}] = &dlink{}
	}
	// One mailbox channel per ordered rank pair that any link crosses.
	hopLat := cfg.LinkLatency + cfg.RouterLatency
	ensure := func(a, b int) error {
		if a == b {
			return nil
		}
		if d.xmit[a] == nil {
			d.xmit[a] = make(map[int]*sim.Port)
		}
		if d.xmit[a][b] != nil {
			return nil
		}
		pa, pb, err := runner.Connect(fmt.Sprintf("dnoc-%d-%d", a, b), hopLat, a, b)
		if err != nil {
			return err
		}
		// Only a→b traffic uses this channel; the reverse direction
		// has its own.
		pb.SetHandler(func(payload any) {
			x := payload.(xfer)
			d.arrive(x.p, x.router)
		})
		pa.SetHandler(func(any) {})
		d.xmit[a][b] = pa
		return nil
	}
	for _, l := range topo.Links() {
		ra, rb := d.part[l[0]], d.part[l[1]]
		if err := ensure(ra, rb); err != nil {
			return nil, err
		}
		if err := ensure(rb, ra); err != nil {
			return nil, err
		}
	}
	// NIC→router is local (node attaches on its router's rank), but the
	// first hop may cross; packets enter at the source router, so no
	// extra channels are needed beyond router links.
	d.nics = make([]*NIC, topo.NumNodes())
	for i := range d.nics {
		d.nics[i] = &NIC{net: d, node: i, rank: d.part[topo.RouterOf(i)]}
	}
	d.regs = make([]*stats.Registry, runner.NumRanks())
	d.messages = make([]*stats.Counter, runner.NumRanks())
	d.bytes = make([]*stats.Counter, runner.NumRanks())
	d.msgLat = make([]*stats.Histogram, runner.NumRanks())
	for i := range d.regs {
		d.regs[i] = stats.NewRegistry()
		sc := d.regs[i].Scope(fmt.Sprintf("dnoc.%d", i))
		d.messages[i] = sc.Counter("messages")
		d.bytes[i] = sc.Counter("bytes")
		d.msgLat[i] = sc.Histogram("latency_ps")
	}
	// Per-rank checkpoint views. Link and NIC orders are derived from the
	// topology alone, so an identically built network restores into them.
	d.views = make([]*rankView, runner.NumRanks())
	for rank := range d.views {
		v := &rankView{d: d, rank: rank}
		v.evs = sim.NewEventSet(runner.Rank(rank).Engine(), fmt.Sprintf("dnoc.r%d", rank), v.dispatch)
		d.views[rank] = v
	}
	for _, l := range topo.Links() {
		d.views[d.part[l[0]]].links = append(d.views[d.part[l[0]]].links, d.links[[2]int{l[0], l[1]}])
		d.views[d.part[l[1]]].links = append(d.views[d.part[l[1]]].links, d.links[[2]int{l[1], l[0]}])
	}
	for _, nc := range d.nics {
		d.views[nc.rank].nics = append(d.views[nc.rank].nics, nc)
	}
	if runner.SnapshotsEnabled() {
		for rank, v := range d.views {
			runner.Rank(rank).Engine().RegisterCheckpoint("dnoc", v)
		}
	}
	return d, nil
}

// Topology returns the simulated topology.
func (d *Network) Topology() noc.Topology { return d.topo }

// RankOfNode returns the rank a node's NIC lives on; traffic generators
// must schedule that node's sends on that rank's engine.
func (d *Network) RankOfNode(node int) int { return d.part[d.topo.RouterOf(node)] }

// NIC returns node i's interface.
func (d *Network) NIC(i int) *NIC { return d.nics[i] }

// Messages returns total delivered messages across ranks (call after the
// run completes).
func (d *Network) Messages() uint64 {
	var n uint64
	for _, c := range d.messages {
		n += c.Count()
	}
	return n
}

// BytesDelivered returns total payload bytes delivered.
func (d *Network) BytesDelivered() uint64 {
	var n uint64
	for _, c := range d.bytes {
		n += c.Count()
	}
	return n
}

// MeanLatencyPs returns the byte-weighted mean message latency.
func (d *Network) MeanLatencyPs() float64 {
	var sum float64
	var n uint64
	for _, h := range d.msgLat {
		sum += h.Mean() * float64(h.N())
		n += h.N()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func serialize(size int, bw float64) sim.Time {
	t := sim.Time(float64(size) / bw * float64(sim.Second))
	if t == 0 {
		t = 1
	}
	return t
}

// engineOf returns the engine owning router r.
func (d *Network) engineOf(r int) *sim.Engine {
	return d.runner.Rank(d.part[r]).Engine()
}

// hop forwards the packet from router r on r's own rank.
func (d *Network) hop(p packet, r int) {
	nxt := d.topo.Route(r, p.dst)
	if nxt < 0 {
		d.deliver(p)
		return
	}
	l := d.links[[2]int{r, nxt}]
	if l == nil {
		panic(fmt.Sprintf("dnoc: route %d->%d without a link", r, nxt))
	}
	eng := d.engineOf(r)
	now := eng.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	ser := serialize(p.size, d.cfg.LinkBandwidth)
	l.freeAt = start + ser
	l.bytes += uint64(p.size)
	p.hops++
	arrive := start + ser + d.cfg.LinkLatency + d.cfg.RouterLatency
	if d.part[nxt] == d.part[r] {
		d.views[d.part[r]].evs.ScheduleAt(arrive, sim.PrioLink, devt{kind: devtHop, p: p, router: nxt})
		return
	}
	// Cross-rank: channel latency covers link+router; any queueing and
	// serialization ride as extra delay.
	port := d.xmit[d.part[r]][d.part[nxt]]
	port.SendDelayed(arrive-now-(d.cfg.LinkLatency+d.cfg.RouterLatency), xfer{p: p, router: nxt})
}

// arrive continues a packet on its new rank.
func (d *Network) arrive(p packet, router int) {
	d.hop(p, router)
}

// deliver completes a packet at its destination NIC (on the local rank).
func (d *Network) deliver(p packet) {
	nic := d.nics[p.dst]
	if !p.last {
		return
	}
	rank := nic.rank
	d.messages[rank].Inc()
	d.bytes[rank].Add(uint64(p.msgSize))
	d.msgLat[rank].Observe(uint64(d.engineOf(d.topo.RouterOf(p.dst)).Now() - p.sentAt))
	if nic.recv != nil {
		nic.recv(p.src, p.msgSize, p.payload)
	}
}

// NIC is a node's interface on its home rank. Send must be invoked from an
// event executing on that rank (the runner's partitioning rule).
type NIC struct {
	net    *Network
	node   int
	rank   int
	freeAt sim.Time
	recv   func(src, size int, payload any)
}

// Node returns the NIC's node id; Rank its home partition.
func (nc *NIC) Node() int { return nc.node }
func (nc *NIC) Rank() int { return nc.rank }

// SetReceiver installs the delivery callback (runs on the destination
// node's rank).
func (nc *NIC) SetReceiver(fn func(src, size int, payload any)) { nc.recv = fn }

// SendTimed mirrors noc.NIC.Send's injection-bandwidth-limited segmentation
// into the fabric, returning the time the last byte is injected (the send
// buffer is free). Senders that need a completion wake-up schedule it
// themselves at the returned time — through their own checkpoint-owned
// events, so a snapshotted run carries no callback closures.
func (nc *NIC) SendTimed(dst, size int, payload any) sim.Time {
	d := nc.net
	eng := d.runner.Rank(nc.rank).Engine()
	now := eng.Now()
	if size <= 0 {
		size = 1
	}
	remaining := size
	injectAt := now
	if nc.freeAt > injectAt {
		injectAt = nc.freeAt
	}
	srcRouter := d.topo.RouterOf(nc.node)
	evs := d.views[nc.rank].evs
	for remaining > 0 {
		pk := remaining
		if pk > d.cfg.MaxPacketBytes {
			pk = d.cfg.MaxPacketBytes
		}
		remaining -= pk
		p := packet{
			src: nc.node, dst: dst, size: pk,
			last: remaining == 0, sentAt: now, msgSize: size,
		}
		if p.last {
			p.payload = payload
		}
		injectAt += serialize(pk, d.cfg.InjectionBandwidth)
		at := injectAt + d.cfg.LinkLatency
		if nc.node == dst {
			evs.ScheduleAt(at, sim.PrioLink, devt{kind: devtDeliver, p: p})
			continue
		}
		evs.ScheduleAt(at, sim.PrioLink, devt{kind: devtHop, p: p, router: srcRouter})
	}
	nc.freeAt = injectAt
	return injectAt
}

// Send is the callback form of SendTimed, for callers that do not need
// checkpointing: the onSent closure is scheduled as a raw (unowned) event,
// so a snapshot taken while one is pending is rejected.
func (nc *NIC) Send(dst, size int, payload any, onSent func()) {
	doneAt := nc.SendTimed(dst, size, payload)
	if onSent != nil {
		eng := nc.net.runner.Rank(nc.rank).Engine()
		eng.ScheduleAt(doneAt, sim.PrioLink, func(any) { onSent() }, nil)
	}
}
