package stats

import (
	"fmt"
	"io"

	"sst/internal/sim"
)

// Sampler captures a time series of selected statistics during a run —
// the raw material for the time-varying plots (bandwidth over time, queue
// occupancy over time) architectural studies lean on.
type Sampler struct {
	reg   *Registry
	names []string
	// rows[i] is (time, values...) for sample i.
	times []sim.Time
	rows  [][]float64
}

// NewSampler tracks the given statistic names (they must exist by the time
// of the first sample).
func NewSampler(reg *Registry, names ...string) *Sampler {
	return &Sampler{reg: reg, names: names}
}

// Names returns the tracked statistic names.
func (s *Sampler) Names() []string { return s.names }

// SampleAt records one row at the given time.
func (s *Sampler) SampleAt(t sim.Time) error {
	row := make([]float64, len(s.names))
	for i, n := range s.names {
		st := s.reg.Get(n)
		if st == nil {
			return fmt.Errorf("stats: sampler: unknown statistic %q", n)
		}
		row[i] = st.Value()
	}
	s.times = append(s.times, t)
	s.rows = append(s.rows, row)
	return nil
}

// Every arms periodic sampling on the engine: maxSamples rows at the given
// period, starting one period from now. A bounded count keeps the sampler
// from holding the event queue open forever.
func (s *Sampler) Every(engine *sim.Engine, period sim.Time, maxSamples int) {
	if maxSamples <= 0 {
		return
	}
	var tick sim.Handler
	remaining := maxSamples
	tick = func(any) {
		if err := s.SampleAt(engine.Now()); err != nil {
			panic(err)
		}
		remaining--
		if remaining > 0 {
			engine.SchedulePrio(period, sim.PrioLate, tick, nil)
		}
	}
	engine.SchedulePrio(period, sim.PrioLate, tick, nil)
}

// N returns the number of samples taken.
func (s *Sampler) N() int { return len(s.times) }

// Row returns sample i.
func (s *Sampler) Row(i int) (sim.Time, []float64) { return s.times[i], s.rows[i] }

// Series returns the sampled values of one tracked statistic.
func (s *Sampler) Series(name string) ([]float64, error) {
	for i, n := range s.names {
		if n != name {
			continue
		}
		out := make([]float64, len(s.rows))
		for j, r := range s.rows {
			out[j] = r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("stats: sampler: %q not tracked", name)
}

// Deltas returns the per-interval increments of a (monotonic) statistic —
// e.g. bytes per sample period from a cumulative byte counter.
func (s *Sampler) Deltas(name string) ([]float64, error) {
	series, err := s.Series(name)
	if err != nil {
		return nil, err
	}
	if len(series) == 0 {
		return nil, nil
	}
	out := make([]float64, len(series))
	prev := 0.0
	for i, v := range series {
		out[i] = v - prev
		prev = v
	}
	return out, nil
}

// WriteCSV emits time_ps plus one column per tracked statistic.
func (s *Sampler) WriteCSV(w io.Writer) {
	fmt.Fprint(w, "time_ps")
	for _, n := range s.names {
		fmt.Fprintf(w, ",%s", n)
	}
	fmt.Fprintln(w)
	for i, t := range s.times {
		fmt.Fprintf(w, "%d", uint64(t))
		for _, v := range s.rows[i] {
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
}
