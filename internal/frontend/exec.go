package frontend

import (
	"sst/internal/isa"
)

// ExecStream is the execution-driven front-end: it interprets an SR1
// program and emits one Op per retired instruction. Addresses and branch
// outcomes are therefore exact, including data-dependent behavior no trace
// or synthetic model can reproduce.
type ExecStream struct {
	m   *isa.Machine
	max uint64
	err error
}

// NewExecStream wraps a machine. maxInstrs of 0 means unbounded (until
// HALT).
func NewExecStream(m *isa.Machine, maxInstrs uint64) *ExecStream {
	if maxInstrs == 0 {
		maxInstrs = ^uint64(0)
	}
	return &ExecStream{m: m, max: maxInstrs}
}

// Machine exposes the underlying interpreter (for result inspection).
func (e *ExecStream) Machine() *isa.Machine { return e.m }

// Err returns the first interpreter error, if any; the stream ends when one
// occurs.
func (e *ExecStream) Err() error { return e.err }

// Next implements Stream.
func (e *ExecStream) Next(op *Op) bool {
	if e.err != nil || e.m.Halted() || e.m.Instret >= e.max {
		return false
	}
	info, err := e.m.Step()
	if err != nil {
		e.err = err
		return false
	}
	if e.m.Halted() && info.Instr.Op == isa.HALT {
		return false
	}
	*op = opFromStep(info)
	return true
}

// opFromStep maps an interpreter StepInfo onto a stream Op.
func opFromStep(info isa.StepInfo) Op {
	in := info.Instr
	op := Op{
		PC:   info.PC,
		Dst:  in.Rd,
		Src1: in.Rs1,
		Src2: in.Rs2,
	}
	switch {
	case in.Op.IsLoad():
		op.Class = ClassLoad
		op.Addr = info.MemAddr
		op.Size = uint8(info.MemSize)
		op.Src2 = 0
	case in.Op.IsStore():
		op.Class = ClassStore
		op.Addr = info.MemAddr
		op.Size = uint8(info.MemSize)
		// Stores read rd (data) and rs1 (base); they write nothing.
		op.Src2 = in.Rd
		op.Dst = 0
	case in.Op.IsBranch():
		op.Class = ClassBranch
		op.Taken = info.Taken
		if in.Op == isa.JAL {
			op.Src1, op.Src2 = 0, 0
		}
	case in.Op.IsFloat():
		op.Class = ClassFloat
		if in.Op == isa.FMADD {
			// FMADD also reads its destination.
		}
	case in.Op == isa.NOP:
		op.Class = ClassNop
		op.Dst, op.Src1, op.Src2 = 0, 0, 0
	default:
		op.Class = ClassInt
	}
	return op
}
