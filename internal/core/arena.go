package core

import (
	"context"
	"sync"

	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/sim"
)

// Per-worker simulation arenas. Every design point in a sweep builds a full
// node model — engine, caches, kernel streams — and throws it away, which
// makes a long sweep's allocation profile the same work done over and over:
// the event free list regrows, cache backing arrays reallocate, kernel
// batch buffers re-ramp. A PointArena keeps that working set alive between
// points: each sweep worker owns one arena and hands it to consecutive
// points, so the second and every later point on a worker runs against
// warmed storage.
//
// Safety comes from move semantics, not sharing. Lending storage to a point
// empties the arena (sim.EventArena.Lend, mem.LinePool.get,
// frontend.OpPool.get all move buffers out), and only an orderly close
// hands it back — scrubbed. A point that panics or times out mid-build
// simply never returns its storage: the arena is left smaller, never
// poisoned, and Reset restores the invariants either way. That is what
// keeps arena-reusing sweeps bit-identical to arena-free ones (see
// TestSweepArenaDeterminism).

// PointArena is one worker's reusable allocation pool for machine and
// network design points. The zero value is not usable; call NewPointArena.
// An arena must only be used by one point at a time — in a sweep, one
// worker goroutine — and is not safe for concurrent use.
type PointArena struct {
	// Events recycles engine event structs and queue backing.
	Events *sim.EventArena
	// Ops recycles kernel-stream batch buffers.
	Ops *frontend.OpPool
	// Lines recycles cache backing arrays.
	Lines *mem.LinePool

	// points counts how many design points the arena has served.
	points int
}

// maxPooledOpBufs bounds the batch buffers Reset keeps: enough to saturate
// every stream of a many-core threaded node (each stream circulates ~13
// buffers), small enough that an idle worker's arena stays a few MB.
const maxPooledOpBufs = 64

// NewPointArena returns an empty arena.
func NewPointArena() *PointArena {
	return &PointArena{
		Events: sim.NewEventArena(),
		Ops:    &frontend.OpPool{},
		Lines:  &mem.LinePool{},
	}
}

// Reset prepares the arena for its next design point: pooled storage is
// trimmed to the steady-state caps so one pathological point (a huge
// pending-event spike, an unusually wide node) cannot make every later
// point carry its high-water mark. It must be called between points —
// ArenaPool.Put does — and is safe after a point that panicked or timed
// out: a dead point can only have kept storage, never returned bad state.
func (a *PointArena) Reset() {
	a.Ops.Trim(maxPooledOpBufs)
	a.Lines.Trim(mem.DefaultLinePoolSlabs)
	a.points++
}

// Points reports how many design points the arena has served (one per
// Reset), a reuse statistic for service metrics.
func (a *PointArena) Points() int { return a.points }

// ArenaPool hands PointArenas to sweep workers and takes them back reset.
// It is safe for concurrent use, so one pool may serve several sweeps — a
// resident service reuses one pool across jobs, which is what keeps the
// service's allocation rate flat no matter how many jobs it serves.
type ArenaPool struct {
	mu   sync.Mutex
	free []*PointArena
	// made counts arenas ever created; served counts points run through
	// the pool's arenas. served - made is the reuse the pool delivered.
	made   int
	served int
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// Get returns a ready arena, creating one when the pool is empty.
func (p *ArenaPool) Get() *PointArena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free) - 1; n >= 0 {
		a := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return a
	}
	p.made++
	return NewPointArena()
}

// Put resets a and returns it to the pool for the next worker.
func (p *ArenaPool) Put(a *PointArena) {
	if a == nil {
		return
	}
	a.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.served += a.points
	a.points = 0
	p.free = append(p.free, a)
}

// Stats reports how many arenas the pool ever created and how many design
// points they served in total. served >> made means the reuse is working.
func (p *ArenaPool) Stats() (made, served int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.made, p.served
}

// arenaKey carries a worker's PointArena through the context chain from
// runPointsHooked down to BuildNode, so study signatures — and every
// caller that runs points without a sweep — stay unchanged.
type arenaKey struct{}

// withArena attaches a worker's arena to the sweep context.
func withArena(ctx context.Context, a *PointArena) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, arenaKey{}, a)
}

// arenaFrom extracts the worker's arena, nil when the sweep runs without
// one (SweepOptions.Arena unset) or the caller is outside a sweep.
func arenaFrom(ctx context.Context) *PointArena {
	a, _ := ctx.Value(arenaKey{}).(*PointArena)
	return a
}
