// Command sst-trace records and replays instruction traces — the
// trace-driven leg of the front-end/back-end split. A slow execution-driven
// run (or any workload kernel) is captured once into a compact binary
// trace; the trace then replays through any timing configuration at full
// simulator speed.
//
// Usage:
//
//	sst-trace record -workload daxpy -o trace.bin
//	sst-trace info   -i trace.bin [-format table|json|csv]
//	sst-trace replay -i trace.bin [-width 4] [-memlat 60ns]
//	          [-format table|json|csv] [-trace-out t.json] [-trace-cap N]
//	          [-metrics-out m.json]
//
// replay's -trace-out records per-event timing spans into a Chrome
// trace_event file (CSV when the path ends in .csv); -metrics-out writes
// run metrics JSON.
//
// Workloads: the SR1 program library (daxpy, dot, chase, fib) and the
// kernel proxies (hpccg, lulesh, stencil, stream, gups, fea).
//
// Exit codes: 0 success, 1 failure, 2 configuration error (bad usage,
// subcommand, workload, format or unit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sst/internal/cli"
	"sst/internal/core"
	"sst/internal/cpu"
	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/obs"
	"sst/internal/sim"
	"sst/internal/stats"
	"sst/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
	}
	cli.Exit("sst-trace", err)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sst-trace record|info|replay [flags]")
	os.Exit(cli.ExitConfig)
}

// openWorkload builds a stream for a named workload.
func openWorkload(name string, n int) (frontend.Stream, func(), error) {
	switch name {
	case "daxpy":
		s, err := workload.DAXPYProgram(n).Stream(0)
		return s, nil, err
	case "dot":
		s, err := workload.DotProductProgram(n).Stream(0)
		return s, nil, err
	case "chase":
		s, err := workload.PointerChaseProgram(n, 4*n).Stream(0)
		return s, nil, err
	case "fib":
		s, err := workload.FibonacciProgram(n).Stream(0)
		return s, nil, err
	case "hpccg":
		k := workload.HPCCG(minInt(n, 32), 1).Stream()
		return k, k.Close, nil
	case "lulesh":
		k := workload.Lulesh(n, 1).Stream()
		return k, k.Close, nil
	case "stencil":
		k := workload.Stencil(minInt(n, 48), 1).Stream()
		return k, k.Close, nil
	case "stream":
		k := workload.STREAMTriad(n, 1).Stream()
		return k, k.Close, nil
	case "gups":
		k := workload.GUPS(64<<20, n, 1).Stream()
		return k, k.Close, nil
	case "fea":
		k := workload.FEA(n, 1).Stream()
		return k, k.Close, nil
	case "minimd":
		k := workload.MiniMD(n, 16, 1, 1).Stream()
		return k, k.Close, nil
	default:
		return nil, nil, cli.Configf("unknown workload %q", name)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "daxpy", "workload to record")
	n := fs.Int("n", 1024, "workload size parameter")
	out := fs.String("o", "trace.bin", "output trace file")
	maxOps := fs.Uint64("max", 0, "truncate after N operations (0 = all)")
	fs.Parse(args)

	stream, closer, err := openWorkload(*wl, *n)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer()
	}
	if *maxOps > 0 {
		stream = &frontend.LimitStream{Inner: stream, N: *maxOps}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := frontend.NewTraceWriter(f)
	var op frontend.Op
	for stream.Next(&op) {
		if err := w.Write(&op); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d operations from %s into %s\n", w.N(), *wl, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input trace file")
	formatFlag := fs.String("format", "table", "output format: table, json or csv")
	fs.Parse(args)
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		return cli.Configf("%v", err)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := frontend.NewTraceStream(f)
	cs := &frontend.CountingStream{Inner: r}
	var op frontend.Op
	for cs.Next(&op) {
	}
	if r.Err() != nil {
		return r.Err()
	}
	if format == core.FormatTable {
		fmt.Printf("%s: %d operations\n", *in, cs.Total())
		for c := frontend.Class(0); int(c) < frontend.NumClasses(); c++ {
			if n := cs.Counts[c]; n > 0 {
				fmt.Printf("  %-7s %10d (%.1f%%)\n", c, n, 100*float64(n)/float64(cs.Total()))
			}
		}
		return nil
	}
	t := stats.NewTable(fmt.Sprintf("Trace census: %s", *in), "class", "count", "percent")
	for c := frontend.Class(0); int(c) < frontend.NumClasses(); c++ {
		if n := cs.Counts[c]; n > 0 {
			t.AddRow(fmt.Sprintf("%v", c), n, 100*float64(n)/float64(cs.Total()))
		}
	}
	return core.WriteResults(os.Stdout, format, core.TableResult{Tab: t})
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input trace file")
	width := fs.Int("width", 4, "core issue width")
	freqStr := fs.String("freq", "2GHz", "core frequency")
	memLat := fs.String("memlat", "60ns", "memory latency")
	l1Size := fs.String("l1", "32KB", "L1 size (\"0\" disables)")
	formatFlag := fs.String("format", "table", "output format: table, json or csv")
	traceOut := fs.String("trace-out", "", "write an event trace (Chrome JSON; CSV if path ends in .csv)")
	traceCap := fs.Int("trace-cap", 0, "trace ring capacity in spans (0 = default)")
	metricsOut := fs.String("metrics-out", "", "write run metrics JSON to this file")
	fs.Parse(args)
	format, err := core.ParseFormat(*formatFlag)
	if err != nil {
		return cli.Configf("%v", err)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	stream := frontend.NewTraceStream(f)

	freq, err := sim.ParseHz(*freqStr)
	if err != nil {
		return cli.Configf("bad freq: %v", err)
	}
	lat, err := sim.ParseTime(*memLat)
	if err != nil {
		return cli.Configf("bad memlat: %v", err)
	}
	engine := sim.NewEngine()
	clock := sim.NewClock(engine, freq)
	var lower mem.Device = mem.NewSimpleMemory(engine, "mem", lat, 20e9, nil)
	if *l1Size != "0" {
		sz := 32 << 10
		if _, err := fmt.Sscanf(strings.ToUpper(*l1Size), "%dKB", &sz); err == nil {
			sz <<= 10
		}
		l1, err := mem.NewCache(engine, mem.CacheConfig{
			Name: "l1", SizeBytes: sz, LineBytes: 64, Assoc: 4,
			HitLatency: freq.CycleTime(2), MSHRs: 16, WriteBack: true,
			PrefetchNextLine: true, PrefetchDegree: 2,
		}, lower, nil)
		if err != nil {
			return err
		}
		lower = l1
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(*traceCap)
		engine.SetTracer(tracer)
	}
	col := obs.NewCollector()
	col.Attach(engine)
	cfg := cpu.DefaultConfig("cpu", *width)
	cfg.Freq = freq
	c, err := cpu.NewSuperscalar(engine, clock, cfg, stream, lower, nil)
	if err != nil {
		return err
	}
	c.Start(func() {})
	engine.RunAll()
	if stream.Err() != nil {
		return stream.Err()
	}
	rep := col.Report()
	if tracer != nil {
		write := tracer.WriteChromeJSON
		if strings.HasSuffix(*traceOut, ".csv") {
			write = tracer.WriteCSV
		}
		if err := writeFile(*traceOut, write); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, rep.WriteJSON); err != nil {
			return err
		}
	}
	switch format {
	case core.FormatJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Operations uint64         `json:"operations"`
			SimPs      uint64         `json:"sim_ps"`
			Cycles     uint64         `json:"cycles"`
			IPC        float64        `json:"ipc"`
			Metrics    *obs.RunReport `json:"metrics"`
		}{c.Retired(), uint64(engine.Now()), uint64(c.Cycles()), c.IPC(), rep})
	case core.FormatCSV:
		t := stats.NewTable("Trace replay", "metric", "value")
		t.AddRow("operations", c.Retired())
		t.AddRow("sim_ps", uint64(engine.Now()))
		t.AddRow("cycles", uint64(c.Cycles()))
		t.AddRow("ipc", c.IPC())
		return t.WriteCSV(os.Stdout)
	default:
		fmt.Printf("replayed %d operations in %v simulated (%d cycles, IPC %.3f)\n",
			c.Retired(), engine.Now(), c.Cycles(), c.IPC())
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
