package serve

// The admission queue. Capacity is global — that is what backpressure
// means — but dequeue order is fair across tenants: a round-robin ring
// over tenants with queued work, FIFO within each tenant. A tenant that
// dumps fifty jobs cannot starve a tenant that submitted one; it can only
// fill the queue, and then admission control starts shedding its
// submissions with 429, which is the correct party to penalize.

// tenantQueue is not safe for concurrent use; the Server serializes
// access under its mutex.
type tenantQueue struct {
	capacity int
	size     int
	ring     []string          // tenants with queued jobs, first-seen order
	next     int               // ring index the next pop starts from
	byTenant map[string][]*job // FIFO per tenant
}

func newTenantQueue(capacity int) *tenantQueue {
	return &tenantQueue{capacity: capacity, byTenant: make(map[string][]*job)}
}

func (q *tenantQueue) len() int { return q.size }

func (q *tenantQueue) full() bool { return q.size >= q.capacity }

// push enqueues j, reporting false when the queue is at capacity.
func (q *tenantQueue) push(j *job) bool {
	if q.full() {
		return false
	}
	if _, ok := q.byTenant[j.tenant]; !ok {
		q.ring = append(q.ring, j.tenant)
	}
	q.byTenant[j.tenant] = append(q.byTenant[j.tenant], j)
	q.size++
	return true
}

// pop dequeues the next job round-robin across tenants, nil when empty.
func (q *tenantQueue) pop() *job {
	if q.size == 0 {
		return nil
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	tenant := q.ring[q.next]
	jobs := q.byTenant[tenant]
	j := jobs[0]
	if len(jobs) == 1 {
		q.dropTenant(q.next)
	} else {
		q.byTenant[tenant] = jobs[1:]
		q.next++
	}
	q.size--
	return j
}

// remove deletes the queued job with the given id, reporting whether it
// was present. Cancellation of a queued job goes through here.
func (q *tenantQueue) remove(id string) bool {
	for ti, tenant := range q.ring {
		jobs := q.byTenant[tenant]
		for i, j := range jobs {
			if j.id != id {
				continue
			}
			if len(jobs) == 1 {
				q.dropTenant(ti)
			} else {
				q.byTenant[tenant] = append(jobs[:i:i], jobs[i+1:]...)
			}
			q.size--
			return true
		}
	}
	return false
}

// dropTenant removes the ring entry at index i (its queue just emptied),
// keeping the round-robin cursor pointing at the tenant that would have
// been next.
func (q *tenantQueue) dropTenant(i int) {
	delete(q.byTenant, q.ring[i])
	q.ring = append(q.ring[:i:i], q.ring[i+1:]...)
	if q.next > i {
		q.next--
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
}

// tenants reports how many tenants have queued jobs.
func (q *tenantQueue) tenants() int { return len(q.ring) }
