package core

import (
	"fmt"
	"time"

	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

// The parallel-simulation study exercises the poster's scalability claim:
// the same multi-node model is partitioned over 1..N ranks and the host
// wall-clock time per simulated event is measured, under every registered
// synchronization mode — conservative global and pairwise windows plus the
// optimistic speculative and adaptive modes. On a multi-core host the
// windows execute concurrently; on any host the study also verifies that
// neither the partitioning nor the sync mode changes the event count
// (bit-level determinism is covered by internal/par's tests).

// latticeNode is a self-driving model node: it burns host CPU per event
// (standing in for component model code) and exchanges messages with its
// ring neighbor. It is checkpointable so the optimistic sync modes, which
// roll ranks back through engine snapshots, can run the lattice.
type latticeNode struct {
	name     string
	out      *sim.Port
	received uint64
	sink     float64
}

func (l *latticeNode) Name() string { return l.name }

func (l *latticeNode) SaveState(enc *sim.Encoder) {
	enc.U64(l.received)
	enc.F64(l.sink)
}

func (l *latticeNode) LoadState(dec *sim.Decoder) error {
	l.received = dec.U64()
	l.sink = dec.F64()
	return dec.Err()
}

func (l *latticeNode) recv(payload any) {
	l.received++
}

// burn is the stand-in for component model code: a fixed dose of host CPU
// per handled event.
func (l *latticeNode) burn() {
	for k := 0; k < 60; k++ {
		l.sink += float64(k) * 1.0000001
	}
}

// BuildLattice partitions `nodes` ring-connected nodes over the runner and
// starts their event chains: each node processes one compute event per
// eventSpacing and one neighbor message per linkLatency. All links share
// one latency, so it exercises the uniform-lookahead case.
func BuildLattice(r *par.Runner, nodes int, eventSpacing, linkLatency sim.Time) ([]*latticeNode, error) {
	nranks := r.NumRanks()
	type half struct{ a, b *sim.Port }
	halves := make([]half, nodes)
	for i := 0; i < nodes; i++ {
		ra := i % nranks
		rb := ((i + 1) % nodes) % nranks
		a, b, err := r.Connect(fmt.Sprintf("lat%d", i), linkLatency, ra, rb)
		if err != nil {
			return nil, err
		}
		halves[i] = half{a, b}
	}
	out := make([]*latticeNode, nodes)
	for i := 0; i < nodes; i++ {
		n := &latticeNode{name: fmt.Sprintf("node%d", i), out: halves[i].a}
		halves[(i-1+nodes)%nodes].b.SetHandler(n.recv)
		rk := r.Rank(i % nranks)
		rk.Add(n)
		eng := rk.Engine()
		node := n
		var work sim.Handler
		sends := sim.Time(0)
		work = func(any) {
			node.burn()
			sends += eventSpacing
			if sends >= linkLatency {
				sends = 0
				node.out.Send(node.received)
			}
			eng.Schedule(eventSpacing, work, nil)
		}
		eng.Schedule(sim.Time(i%7), work, nil)
	}
	return out, nil
}

// Heterogeneous lattice constants: a duty-cycled chatty pair coupled by
// one tight link plus a bursty periphery on links an order of magnitude
// slower. This is the configuration where topology-aware (pairwise) sync
// beats a global window: the tight link pins the global lookahead to
// tightLat for every rank forever, while pairwise horizons are computed
// from next-event times — so whenever the chatty pair is in the quiet part
// of its duty cycle, periphery ranks get windows sized by their slow
// inbound links and run a whole burst per dispatch instead of crawling
// through it tightLat at a time.
const (
	hetTightLat   = 250 * sim.Nanosecond
	hetSlowLat    = 2 * sim.Microsecond
	hetChatStep   = 2 * sim.Nanosecond   // chatty pair compute-event spacing
	hetChatOn     = 5 * sim.Microsecond  // chatty active slice per period
	hetChatPeriod = 20 * sim.Microsecond // chatty duty-cycle period
	hetBurstLen   = 16                   // events per periphery burst
	hetBurstStep  = 50 * sim.Nanosecond
	hetBurstGap   = 8 * sim.Microsecond // burst start to next burst start
)

// BuildLatticeHetero partitions a heterogeneous-latency lattice over the
// runner: nodes 0 and 1 exchange messages every tightLat across the one
// tight link and run dense compute events, while the remaining nodes sit
// on slow ring links and wake only for short event bursts.
func BuildLatticeHetero(r *par.Runner, nodes int) ([]*latticeNode, error) {
	if nodes < 4 {
		return nil, fmt.Errorf("core: heterogeneous lattice needs at least 4 nodes, got %d", nodes)
	}
	nranks := r.NumRanks()
	type half struct{ a, b *sim.Port }
	halves := make([]half, nodes)
	for i := 0; i < nodes; i++ {
		lat := hetSlowLat
		if i == 0 {
			lat = hetTightLat // the node0-node1 link
		}
		ra := i % nranks
		rb := ((i + 1) % nodes) % nranks
		a, b, err := r.Connect(fmt.Sprintf("het%d", i), lat, ra, rb)
		if err != nil {
			return nil, err
		}
		halves[i] = half{a, b}
	}
	out := make([]*latticeNode, nodes)
	for i := 0; i < nodes; i++ {
		out[i] = &latticeNode{name: fmt.Sprintf("node%d", i), out: halves[i].a}
		halves[(i-1+nodes)%nodes].b.SetHandler(out[i].recv)
		r.Rank(i % nranks).Add(out[i])
	}
	// The chatty pair: dense local events, a message across the tight link
	// every tightLat, active hetChatOn out of every hetChatPeriod. Node 1
	// replies on the tight link's far port rather than its slow ring
	// out-port, so the chat stays on the 250ns path. The quiet stretch is
	// what the pairwise horizons exploit: the pair's next events sit a
	// whole period ahead, so it stops capping everyone else's windows.
	// Both drivers are checkpoint-owned components (their event chains live
	// in EventSets, their counters in SaveState) rather than raw closures,
	// so an optimistic rank can snapshot and roll the lattice back.
	halves[0].a.SetHandler(out[0].recv) // node 1 -> node 0 replies
	for i, cfg := range []struct {
		port  *sim.Port
		start sim.Time
	}{{halves[0].a, 0}, {halves[0].b, sim.Nanosecond}} {
		rk := r.Rank(i % nranks)
		c := &hetChat{
			name: fmt.Sprintf("chat%d", i), node: out[i], port: cfg.port,
			eng: rk.Engine(), per: int(hetTightLat / hetChatStep),
		}
		c.set = sim.NewEventSet(c.eng, c.name, c.work)
		rk.Add(c)
		c.set.ScheduleAt(cfg.start, sim.PrioLink, 0)
	}
	// The periphery: hetBurstLen events spaced hetBurstStep, one ring
	// message at the end of each burst, then silence until the next burst.
	for i := 2; i < nodes; i++ {
		rk := r.Rank(i % nranks)
		p := &hetBurst{name: fmt.Sprintf("burst%d", i), node: out[i], eng: rk.Engine()}
		p.set = sim.NewEventSet(p.eng, p.name, p.work)
		rk.Add(p)
		p.set.ScheduleAt(sim.Time(i%7)*sim.Nanosecond, sim.PrioLink, 0)
	}
	return out, nil
}

// hetChat drives one side of the chatty pair as a checkpointable component:
// the pending tick lives in its EventSet and the duty-cycle counter rides
// in its saved state.
type hetChat struct {
	name  string
	node  *latticeNode
	port  *sim.Port
	eng   *sim.Engine
	set   *sim.EventSet
	per   int
	count int
}

func (c *hetChat) Name() string                     { return c.name }
func (c *hetChat) SaveState(enc *sim.Encoder)       { enc.I64(int64(c.count)); c.set.Save(enc) }
func (c *hetChat) LoadState(dec *sim.Decoder) error { c.count = int(dec.I64()); return c.set.Load(dec) }
func (c *hetChat) PendingOwned() int                { return c.set.PendingOwned() }

func (c *hetChat) work(any) {
	c.node.burn()
	c.count++
	if c.count%c.per == 0 {
		c.port.Send(c.node.received)
	}
	now := c.eng.Now()
	if phase := now % hetChatPeriod; phase+hetChatStep >= hetChatOn {
		c.set.ScheduleAt(now+hetChatPeriod-phase, sim.PrioLink, 0)
		return
	}
	c.set.ScheduleAt(now+hetChatStep, sim.PrioLink, 0)
}

// hetBurst drives one periphery node's duty-cycled bursts, checkpoint-owned
// like hetChat.
type hetBurst struct {
	name string
	node *latticeNode
	eng  *sim.Engine
	set  *sim.EventSet
	k    int
}

func (p *hetBurst) Name() string                     { return p.name }
func (p *hetBurst) SaveState(enc *sim.Encoder)       { enc.I64(int64(p.k)); p.set.Save(enc) }
func (p *hetBurst) LoadState(dec *sim.Decoder) error { p.k = int(dec.I64()); return p.set.Load(dec) }
func (p *hetBurst) PendingOwned() int                { return p.set.PendingOwned() }

func (p *hetBurst) work(any) {
	p.node.burn()
	p.k++
	now := p.eng.Now()
	if p.k%hetBurstLen == 0 {
		p.node.out.Send(p.node.received)
		p.set.ScheduleAt(now+hetBurstGap-sim.Time(hetBurstLen-1)*hetBurstStep, sim.PrioLink, 0)
		return
	}
	p.set.ScheduleAt(now+hetBurstStep, sim.PrioLink, 0)
}

// ParallelScalingResult is the parallel-scaling study's Result: the
// rendered table plus, per rank count, the host wall time and the total
// dispatched window count under each sync mode. WallSeconds refers to the
// default (pairwise) mode; the legacy Global fields alias the per-mode maps
// for existing consumers.
type ParallelScalingResult struct {
	TableResult
	WallSeconds       map[int]float64
	WallSecondsGlobal map[int]float64
	Windows           map[int]uint64
	WindowsGlobal     map[int]uint64
	// Per-sync-mode maps keyed by par.SyncMode.String() then rank count,
	// covering the optimistic modes the legacy fields predate.
	WallSecondsMode map[string]map[int]float64
	WindowsMode     map[string]map[int]uint64
	RollbacksMode   map[string]map[int]uint64
}

// ParallelScalingStudy runs the heterogeneous lattice at each rank count
// for the given simulated horizon under all four sync modes, reporting
// host wall time, dispatched windows, rollbacks and simulated events. The
// event count must be invariant across every (ranks, mode) cell, and on
// multi-rank runs the pairwise mode must not dispatch more windows than
// the global mode — both are checked here, not just reported.
//
// Unlike the design-space sweeps this study stays sequential on purpose:
// each point measures host wall-clock and already spawns one goroutine per
// rank, so running points through the sweep worker pool would contend for
// cores and corrupt the very timings being reported. opts.Workers is
// therefore ignored; opts.Context is still consulted between points so a
// cancelled sweep stops promptly.
func ParallelScalingStudy(rankCounts []int, nodes int, horizon sim.Time, opts SweepOptions) (*ParallelScalingResult, error) {
	return ParallelScalingStudyModes(rankCounts, nodes, horizon, opts,
		[]par.SyncMode{par.SyncGlobal, par.SyncPairwise, par.SyncSpeculative, par.SyncAdaptive})
}

// ParallelScalingStudyModes is ParallelScalingStudy restricted to a chosen
// subset of sync modes (the sst-net -sync flag). Absent modes report zero
// in the fixed table columns and are missing from the per-mode maps; the
// speedup baseline is pairwise when selected, otherwise the first mode.
func ParallelScalingStudyModes(rankCounts []int, nodes int, horizon sim.Time, opts SweepOptions, modes []par.SyncMode) (*ParallelScalingResult, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("core: parallel scaling study needs at least one sync mode")
	}
	baseMode := modes[0]
	for _, m := range modes {
		if m == par.SyncPairwise {
			baseMode = m
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Parallel simulation scaling: %d-node heterogeneous lattice, %v horizon", nodes, horizon),
		"ranks", "events", "wall_ms_global", "wall_ms_pairwise", "wall_ms_spec", "wall_ms_adaptive",
		"windows_global", "windows_pairwise", "windows_spec", "rollbacks_spec", "speedup_vs_1rank")
	ctx := opts.context()
	res := &ParallelScalingResult{
		WallSeconds:       map[int]float64{},
		WallSecondsGlobal: map[int]float64{},
		Windows:           map[int]uint64{},
		WindowsGlobal:     map[int]uint64{},
		WallSecondsMode:   map[string]map[int]float64{},
		WindowsMode:       map[string]map[int]uint64{},
		RollbacksMode:     map[string]map[int]uint64{},
	}
	for _, m := range modes {
		res.WallSecondsMode[m.String()] = map[int]float64{}
		res.WindowsMode[m.String()] = map[int]uint64{}
		res.RollbacksMode[m.String()] = map[int]uint64{}
	}
	type cell struct {
		wall      float64
		windows   uint64
		events    uint64
		rollbacks uint64
	}
	run := func(nr int, mode par.SyncMode) (cell, error) {
		r, err := par.NewRunner(nr)
		if err != nil {
			return cell{}, err
		}
		r.SetSyncMode(mode)
		if mode.Speculative() {
			// Optimistic execution rolls ranks back through engine
			// snapshots, so these cells run with checkpoint tracking on —
			// its bookkeeping cost is part of the mode's measured price.
			r.EnableSnapshots()
		}
		if _, err := BuildLatticeHetero(r, nodes); err != nil {
			return cell{}, err
		}
		start := time.Now()
		events, err := r.Run(horizon)
		if err != nil {
			return cell{}, err
		}
		w := time.Since(start).Seconds()
		m := r.Metrics()
		var dispatched uint64
		for _, rk := range m.Ranks {
			dispatched += rk.Windows
		}
		return cell{wall: w, windows: dispatched, events: events, rollbacks: m.Rollbacks}, nil
	}
	var base float64
	var baseEvents uint64
	for _, nr := range rankCounts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: parallel scaling study cancelled: %w", err)
		}
		cells := map[par.SyncMode]cell{}
		has := func(m par.SyncMode) bool { _, ok := cells[m]; return ok }
		for _, mode := range modes {
			c, err := run(nr, mode)
			if err != nil {
				return nil, fmt.Errorf("core: %v sync at %d ranks: %w", mode, nr, err)
			}
			cells[mode] = c
		}
		g, p := cells[par.SyncGlobal], cells[par.SyncPairwise]
		bc := cells[baseMode]
		if nr == rankCounts[0] {
			base = bc.wall
			baseEvents = bc.events
		}
		for _, mode := range modes {
			if ev := cells[mode].events; ev != baseEvents {
				return nil, fmt.Errorf("core: partitioning or sync mode changed event count at %d ranks: %v %d, reference %d",
					nr, mode, ev, baseEvents)
			}
		}
		if nr > 1 && has(par.SyncGlobal) && has(par.SyncPairwise) && p.windows > g.windows {
			return nil, fmt.Errorf("core: pairwise sync dispatched more windows than global at %d ranks: %d vs %d",
				nr, p.windows, g.windows)
		}
		if has(par.SyncPairwise) {
			res.WallSeconds[nr] = p.wall
			res.Windows[nr] = p.windows
		}
		if has(par.SyncGlobal) {
			res.WallSecondsGlobal[nr] = g.wall
			res.WindowsGlobal[nr] = g.windows
		}
		for _, mode := range modes {
			res.WallSecondsMode[mode.String()][nr] = cells[mode].wall
			res.WindowsMode[mode.String()][nr] = cells[mode].windows
			res.RollbacksMode[mode.String()][nr] = cells[mode].rollbacks
		}
		s, a := cells[par.SyncSpeculative], cells[par.SyncAdaptive]
		t.AddRow(nr, bc.events, g.wall*1e3, p.wall*1e3, s.wall*1e3, a.wall*1e3,
			g.windows, p.windows, s.windows, s.rollbacks, base/bc.wall)
	}
	res.TableResult = TableResult{Tab: t}
	return res, nil
}
