// Ablation benchmarks: quantify the design choices DESIGN.md calls out by
// running the same workload with one knob flipped. Each benchmark prints a
// comparison table and asserts that the architecturally "better" choice
// actually wins in the model — if a refactor breaks, say, the FR-FCFS
// scheduler's row-hit preference, the corresponding ablation fails.
//
// Run with: go test -bench=Ablation -benchtime=1x
package sst_test

import (
	"fmt"
	"testing"

	"sst/internal/config"
	"sst/internal/core"
	"sst/internal/noc"
	"sst/internal/sim"
	"sst/internal/stats"
)

// runVariant runs one machine config and returns its runtime in seconds.
func runVariant(b *testing.B, cfg *config.MachineConfig) float64 {
	b.Helper()
	res, err := core.RunMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Seconds
}

// runVariants runs independent ablation variants through the concurrent
// sweep pool and returns their runtimes in config order.
func runVariants(b *testing.B, cfgs []*config.MachineConfig) []float64 {
	b.Helper()
	results, err := core.RunMachines(cfgs, core.SweepOptions{})
	if err != nil {
		b.Fatal(err)
	}
	secs := make([]float64, len(results))
	for i, r := range results {
		secs[i] = r.Seconds
	}
	return secs
}

// BenchmarkAblationMemScheduler compares FR-FCFS against FCFS memory
// scheduling on a mixed-row workload. FR-FCFS's row-hit preference must
// win (or at worst tie).
func BenchmarkAblationMemScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: DRAM scheduling policy", "policy", "runtime_ms", "ratio")
		scheds := []string{"fr-fcfs", "fcfs"}
		var cfgs []*config.MachineConfig
		for _, sched := range scheds {
			cfg := core.SweepMachine("hpccg", "ddr3-1333", 4, core.Full)
			cfg.Name = "sched-" + sched
			cfg.Node.Mem.Scheduler = sched
			cfgs = append(cfgs, cfg)
		}
		results := runVariants(b, cfgs)
		for j, sched := range scheds {
			tab.AddRow(sched, results[j]*1e3, results[j]/results[0])
		}
		printOnce(tab)
		if results[0] > results[1]*1.001 {
			b.Errorf("FR-FCFS (%.4g s) slower than FCFS (%.4g s)", results[0], results[1])
		}
	}
}

// BenchmarkAblationPrefetchDegree sweeps the stream prefetcher from off to
// degree 8 on a streaming workload: deeper prefetch must monotonically
// reduce runtime.
func BenchmarkAblationPrefetchDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: prefetch degree on a streaming workload",
			"l2_degree", "runtime_ms", "speedup_vs_off")
		degrees := []int{0, 1, 2, 8}
		var cfgs []*config.MachineConfig
		for _, deg := range degrees {
			cfg := core.SweepMachine("stream", "ddr3-1333", 4, core.Full)
			cfg.Name = fmt.Sprintf("pf-%d", deg)
			if deg == 0 {
				cfg.Node.L1.Prefetch = false
				cfg.Node.L2.Prefetch = false
			} else {
				cfg.Node.L1.Prefetch = true
				cfg.Node.L1.PrefetchDeg = 1
				cfg.Node.L2.Prefetch = true
				cfg.Node.L2.PrefetchDeg = deg
			}
			cfgs = append(cfgs, cfg)
		}
		results := runVariants(b, cfgs)
		off := results[0]
		for j, deg := range degrees {
			s := results[j]
			if j > 0 && s > results[j-1]*1.02 {
				b.Errorf("prefetch degree %d (%.4g s) slower than shallower (%.4g s)", deg, s, results[j-1])
			}
			tab.AddRow(deg, s*1e3, off/s)
		}
		printOnce(tab)
		if deepest := results[len(results)-1]; off/deepest < 1.5 {
			b.Errorf("deep prefetch speedup only %.2fx over none", off/deepest)
		}
	}
}

// BenchmarkAblationReplacement compares LRU, FIFO and random replacement
// on the reuse-heavy CG solver. LRU must not lose to either alternative by
// more than noise.
func BenchmarkAblationReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: cache replacement policy", "policy", "runtime_ms", "ratio_vs_lru")
		policies := []string{"lru", "fifo", "random"}
		var cfgs []*config.MachineConfig
		for _, repl := range policies {
			cfg := core.SweepMachine("hpccg", "ddr3-1333", 4, core.Full)
			cfg.Name = "repl-" + repl
			cfg.Node.L1.Repl = repl
			cfg.Node.L2.Repl = repl
			cfgs = append(cfgs, cfg)
		}
		secs := runVariants(b, cfgs)
		results := map[string]float64{}
		for j, repl := range policies {
			results[repl] = secs[j]
		}
		for _, repl := range policies {
			tab.AddRow(repl, results[repl]*1e3, results[repl]/results["lru"])
		}
		printOnce(tab)
		if results["lru"] > results["fifo"]*1.05 || results["lru"] > results["random"]*1.05 {
			b.Errorf("LRU lost by more than 5%%: lru=%.4g fifo=%.4g random=%.4g",
				results["lru"], results["fifo"], results["random"])
		}
	}
}

// BenchmarkAblationAddressMapping compares interleaved (bank-parallel)
// against sequential (row-local) DRAM address mapping on a bandwidth-bound
// stream: interleaving must win by exposing bank parallelism.
func BenchmarkAblationAddressMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: DRAM address mapping", "mapping", "runtime_ms", "ratio")
		mappings := []string{"interleave", "sequential"}
		var cfgs []*config.MachineConfig
		for _, mapping := range mappings {
			cfg := core.SweepMachine("stream", "ddr3-1333", 8, core.Full)
			cfg.Name = "map-" + mapping
			cfg.Node.Mem.Mapping = mapping
			cfgs = append(cfgs, cfg)
		}
		secs := runVariants(b, cfgs)
		results := map[string]float64{}
		for j, mapping := range mappings {
			results[mapping] = secs[j]
		}
		for _, mapping := range mappings {
			tab.AddRow(mapping, results[mapping]*1e3, results[mapping]/results["interleave"])
		}
		printOnce(tab)
		if results["interleave"] > results["sequential"] {
			b.Errorf("interleaved mapping (%.4g s) slower than sequential (%.4g s)",
				results["interleave"], results["sequential"])
		}
	}
}

// BenchmarkAblationMSHRDepth compares a nearly blocking cache (1 MSHR)
// against a non-blocking one (16/32 MSHRs): memory-level parallelism must
// pay off on a miss-heavy workload.
func BenchmarkAblationMSHRDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: MSHR depth (memory-level parallelism)",
			"l1_mshrs", "l2_mshrs", "runtime_ms", "speedup_vs_blocking")
		depths := []struct{ l1, l2 int }{{1, 1}, {4, 8}, {16, 32}}
		var cfgs []*config.MachineConfig
		for _, mshrs := range depths {
			cfg := core.SweepMachine("lulesh", "gddr5-4000", 8, core.Full)
			cfg.Name = fmt.Sprintf("mshr-%d-%d", mshrs.l1, mshrs.l2)
			cfg.Node.L1.MSHRs = mshrs.l1
			cfg.Node.L2.MSHRs = mshrs.l2
			cfgs = append(cfgs, cfg)
		}
		results := runVariants(b, cfgs)
		for j, mshrs := range depths {
			tab.AddRow(mshrs.l1, mshrs.l2, results[j]*1e3, results[0]/results[j])
		}
		printOnce(tab)
	}
}

// BenchmarkAblationCoherenceSharing measures the cost of MESI sharing:
// the same total work on 1, 2 and 4 cores with private L1s over the
// snooping bus. Disjoint working sets should scale; the table quantifies
// bus and coherence overheads.
func BenchmarkAblationCoherenceSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: multicore scaling over the MESI bus",
			"cores", "runtime_ms", "speedup_vs_1core")
		counts := []int{1, 2, 4}
		var cfgs []*config.MachineConfig
		for _, cores := range counts {
			cfg := core.SweepMachine("stencil", "gddr5-4000", 4, core.Full)
			cfg.Name = fmt.Sprintf("cores-%d", cores)
			cfg.Node.Cores = cores
			cfgs = append(cfgs, cfg)
		}
		results := runVariants(b, cfgs)
		for j, cores := range counts {
			tab.AddRow(cores, results[j]*1e3, results[0]/results[j])
		}
		printOnce(tab)
	}
}

// BenchmarkAblationBackendFidelity compares the three single-thread timing
// back-ends at width 1 on a workload whose loads feed real consumers (the
// synthetic irregular profile carries load→use dependences) — SST's
// multi-fidelity claim made concrete. The in-order-issue scoreboard blocks
// at the first unready consumer; the OoO window issues past it, recovering
// memory-level parallelism a narrow in-order machine cannot see.
func BenchmarkAblationBackendFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: back-end fidelity at width 1 (irregular dependent loads, DDR3)",
			"backend", "runtime_ms", "speedup_vs_inorder")
		kinds := []string{"inorder", "superscalar", "ooo"}
		var cfgs []*config.MachineConfig
		for _, kind := range kinds {
			cfgs = append(cfgs, &config.MachineConfig{
				Name: "be-" + kind,
				Node: config.NodeSpec{
					CPU: config.CPUSpec{
						Kind: kind, Freq: "3.2GHz", Width: 1,
						LoadQ: 16, Predictor: 1024,
					},
					L1:  &config.CacheSpec{Size: "32KB", Assoc: 4, HitLat: 2, MSHRs: 16},
					Mem: config.MemSpec{Preset: "ddr3-1333", CapacityGB: 4},
				},
				Workload: config.WorkloadSpec{Kind: "synthetic", Profile: "irregular", Ops: 300_000, Seed: 1},
			})
		}
		secs := runVariants(b, cfgs)
		results := map[string]float64{}
		for j, kind := range kinds {
			results[kind] = secs[j]
			tab.AddRow(kind, secs[j]*1e3, secs[0]/secs[j])
		}
		printOnce(tab)
		if results["ooo"]*1.3 > results["superscalar"] {
			b.Errorf("OoO (%.4g s) should clearly beat the in-order-issue scoreboard (%.4g s) at width 1",
				results["ooo"], results["superscalar"])
		}
		if results["superscalar"] > results["inorder"] {
			b.Errorf("scoreboard (%.4g s) should not lose to blocking in-order (%.4g s)",
				results["superscalar"], results["inorder"])
		}
	}
}

// BenchmarkAblationCoherenceFabric compares the snooping bus against the
// directory on a multicore node with private working sets: the directory
// avoids both broadcast snoops and shared-bus serialization, so it should
// match or beat the bus and send (near) zero snoops.
func BenchmarkAblationCoherenceFabric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: snooping bus vs directory coherence (8 cores, private data)",
			"fabric", "runtime_ms", "snoops_sent")
		results := map[string]float64{}
		for _, fabric := range []string{"bus", "directory"} {
			cfg := core.SweepMachine("stencil", "gddr5-4000", 4, core.Full)
			cfg.Name = "coh-" + fabric
			cfg.Node.Cores = 8
			cfg.Node.Coherence = fabric
			node, err := core.BuildNode(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := node.Run()
			if err != nil {
				b.Fatal(err)
			}
			results[fabric] = res.Seconds
			snoops := uint64(0)
			if node.Dir != nil {
				snoops = node.Dir.SnoopsSent()
			}
			tab.AddRow(fabric, res.Seconds*1e3, snoops)
		}
		printOnce(tab)
		if results["directory"] > results["bus"]*1.05 {
			b.Errorf("directory (%.4g s) should not lose to the bus (%.4g s) on private data",
				results["directory"], results["bus"])
		}
	}
}

// BenchmarkAblationNetworkFidelity contrasts the fast (unbounded-queue,
// LogGP-style) network model against the detailed (credit-based,
// bounded-buffer) model on the same hot-spot traffic. Uncontended they
// agree exactly (asserted in internal/noc tests); under congestion the
// detailed model exposes backpressure the fast model cannot represent.
func BenchmarkAblationNetworkFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Ablation: network model fidelity under hot-spot congestion (8x8 mesh)",
			"model", "completion_ms", "blocked_time_ms", "peak_buffer_B")
		topo, err := noc.NewMesh2D(8, 8)
		if err != nil {
			b.Fatal(err)
		}
		cfg := noc.DefaultConfig()
		hot := topo.NumNodes() - 1
		const msg = 128 << 10

		eF := sim.NewEngine()
		fast, err := noc.NewNetwork(eF, "fast", topo, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		var tFast sim.Time
		fast.NIC(hot).SetReceiver(func(int, int, any) { tFast = eF.Now() })
		for n := 0; n < hot; n++ {
			fast.NIC(n).Send(hot, msg, nil, nil)
		}
		eF.RunAll()
		tab.AddRow("fast", tFast.Seconds()*1e3, 0.0, "unbounded")

		eD := sim.NewEngine()
		det, err := noc.NewDetailedNetwork(eD, "detailed", topo, cfg, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		var tDet sim.Time
		det.NIC(hot).SetReceiver(func(int, int, any) { tDet = eD.Now() })
		for n := 0; n < hot; n++ {
			det.NIC(n).Send(hot, msg, nil, nil)
		}
		eD.RunAll()
		tab.AddRow("detailed", tDet.Seconds()*1e3,
			det.CreditBlockedTime().Seconds()*1e3, det.PeakBufferOccupancy())
		printOnce(tab)
		if tDet < tFast {
			b.Errorf("detailed (%v) should not beat fast (%v) under congestion", tDet, tFast)
		}
		if det.CreditBlockedTime() == 0 {
			b.Error("detailed model recorded no backpressure on hot-spot traffic")
		}
	}
}
