package fault

// Crash-safety of the fault layer: a faulty ring with a scheduled kill is
// snapshotted at a barrier, restored into a freshly built runner, and
// continued — and both the component states and the recorded fault traces
// must be byte-identical to the uninterrupted run, at every rank count and
// under both sync modes, whether the kill was still pending or had already
// fired when the snapshot was taken.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sst/internal/par"
	"sst/internal/sim"
)

// ringNode checkpoint support; Add registers it automatically when the
// rank engine has snapshots enabled.
func (n *ringNode) SaveState(enc *sim.Encoder) {
	enc.U64(n.count)
	enc.U64(n.corrupted)
	enc.U64(n.sum)
	enc.Bool(n.dead)
}

func (n *ringNode) LoadState(dec *sim.Decoder) error {
	n.count = dec.U64()
	n.corrupted = dec.U64()
	n.sum = dec.U64()
	n.dead = dec.Bool()
	return dec.Err()
}

// Kill makes ringNode Killable: a dead node swallows every arrival, so the
// ring's tokens die at it and the outcome visibly depends on the kill.
func (n *ringNode) Kill() { n.dead = true }

// ringSig is one node's full result signature including liveness.
type ringSig struct {
	Count, Corrupted, Sum uint64
	Dead                  bool
}

const (
	ringKillNode = 5
	ringKillAt   = 1200 * sim.Nanosecond
)

// buildFaultyRingSnap is runFaultyRingMode's builder with snapshots enabled
// and a KillAt on one node, factored out so a run can be cut at a barrier
// and resumed on a fresh, identically built runner.
func buildFaultyRingSnap(t *testing.T, r *par.Runner, nnodes int, seed uint64) ([]*ringNode, []*LinkInjector, *KillRecord) {
	t.Helper()
	r.EnableSnapshots()
	nranks := r.NumRanks()
	rankOf := func(i int) int { return i * nranks / nnodes }
	nodes := make([]*ringNode, nnodes)
	for i := range nodes {
		nodes[i] = &ringNode{
			name: "n" + string(rune('0'+i%10)) + string(rune('0'+i/10)),
			eng:  r.Rank(rankOf(i)).Engine(),
		}
		r.Rank(rankOf(i)).Add(nodes[i])
	}
	cfg := LinkFaults{
		DropP:    0.02,
		CorruptP: 0.05,
		DelayP:   0.2,
		MaxDelay: 7 * sim.Nanosecond,
		Record:   true,
	}
	injs := make([]*LinkInjector, nnodes)
	for i := range nodes {
		j := (i + 1) % nnodes
		name := "ring" + nodes[i].name
		a, b, err := r.Connect(name, 10*sim.Nanosecond, rankOf(i), rankOf(j))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].out = a
		b.SetHandler(nodes[j].recv)
		a.SetHandler(func(any) {})
		inj, err := InjectLink(a.Link(), seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inj.SetClocks(nodes[i].eng.Now, nodes[j].eng.Now)
		injs[i] = inj
	}
	r.Rank(0).Engine().Schedule(0, func(any) {
		for k := 0; k < 8; k++ {
			nodes[0].out.Send(k * 1000)
		}
	}, nil)
	rec, err := KillAt(r.Rank(rankOf(ringKillNode)), nodes[ringKillNode].name, ringKillAt)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, injs, rec
}

func ringSigs(nodes []*ringNode) []ringSig {
	sigs := make([]ringSig, len(nodes))
	for i, n := range nodes {
		sigs[i] = ringSig{Count: n.count, Corrupted: n.corrupted, Sum: n.sum, Dead: n.dead}
	}
	return sigs
}

func ringTraces(injs []*LinkInjector) []Trace {
	traces := make([]Trace, len(injs))
	for i, inj := range injs {
		traces[i] = inj.TraceA()
	}
	return traces
}

// runFaultyRingSnapRef runs the killable faulty ring uninterrupted.
func runFaultyRingSnapRef(t *testing.T, nranks, nnodes int, seed uint64, mode par.SyncMode) ([]ringSig, []Trace) {
	t.Helper()
	r, err := par.NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSyncMode(mode)
	nodes, injs, rec := buildFaultyRingSnap(t, r, nnodes, seed)
	if _, err := r.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rec.Done {
		t.Fatalf("kill of %s never fired", nodes[ringKillNode].name)
	}
	return ringSigs(nodes), ringTraces(injs)
}

// runFaultyRingKillRestore cuts the run at the barrier, snapshots, rebuilds
// from scratch, restores, and finishes.
func runFaultyRingKillRestore(t *testing.T, nranks, nnodes int, seed uint64, snapMode, restoreMode par.SyncMode, barrier sim.Time) ([]ringSig, []Trace) {
	t.Helper()
	r1, err := par.NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r1.SetSyncMode(snapMode)
	buildFaultyRingSnap(t, r1, nnodes, seed)
	if _, err := r1.Run(barrier); err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := r1.SaveTo(&file); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	r2, err := par.NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	r2.SetSyncMode(restoreMode)
	nodes, injs, rec := buildFaultyRingSnap(t, r2, nnodes, seed)
	if err := r2.LoadFrom(bytes.NewReader(file.Bytes())); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if rec.Done != (barrier > ringKillAt) {
		t.Fatalf("restored kill Done = %v at barrier %v (kill at %v)", rec.Done, barrier, ringKillAt)
	}
	if _, err := r2.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !rec.Done {
		t.Fatal("restored kill never fired")
	}
	return ringSigs(nodes), ringTraces(injs)
}

// TestFaultKillRestoreDeterminism: the headline crash-safety property for
// the fault layer. Barrier 500ns snapshots with the kill still pending
// (KillRecord re-creates it on restore); barrier 1500ns snapshots after it
// fired (the dead flag rides in the node state).
func TestFaultKillRestoreDeterminism(t *testing.T) {
	const nnodes = 12
	const seed = 2024
	refStates, refTraces := runFaultyRingSnapRef(t, 1, nnodes, seed, par.SyncPairwise)
	var total uint64
	for _, tr := range refTraces {
		total += uint64(len(tr))
	}
	if total == 0 {
		t.Fatal("reference run injected no faults; test is vacuous")
	}
	if !refStates[ringKillNode].Dead {
		t.Fatal("reference run's kill target survived; test is vacuous")
	}
	refBytes := fmt.Sprintf("%#v", refTraces)
	rankCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		rankCounts = []int{1, 4}
	}
	for _, barrier := range []sim.Time{500 * sim.Nanosecond, 1500 * sim.Nanosecond} {
		for _, nranks := range rankCounts {
			for _, mode := range []par.SyncMode{par.SyncGlobal, par.SyncPairwise} {
				states, traces := runFaultyRingKillRestore(t, nranks, nnodes, seed, mode, mode, barrier)
				label := fmt.Sprintf("barrier=%v nranks=%d sync=%v", barrier, nranks, mode)
				if !reflect.DeepEqual(states, refStates) {
					t.Errorf("%s: restored node state diverged\n got %+v\nwant %+v", label, states, refStates)
				}
				if got := fmt.Sprintf("%#v", traces); got != refBytes {
					t.Errorf("%s: restored fault trace diverged byte-for-byte", label)
				}
			}
		}
	}
}

// TestCorruptedPayloadCodec round-trips a Corrupted wrapper through the
// snapshot payload registry (nested payload encoding).
func TestCorruptedPayloadCodec(t *testing.T) {
	enc := sim.NewEncoder()
	sim.EncodePayload(enc, Corrupted{Payload: uint64(42)})
	sim.EncodePayload(enc, Corrupted{Payload: nil})
	dec := sim.NewDecoder(enc.Bytes())
	v, err := sim.DecodePayload(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(Corrupted).Payload.(uint64); got != 42 {
		t.Fatalf("round-tripped payload %d, want 42", got)
	}
	v, err = sim.DecodePayload(dec)
	if err != nil {
		t.Fatal(err)
	}
	if v.(Corrupted).Payload != nil {
		t.Fatalf("round-tripped nil payload became %#v", v.(Corrupted).Payload)
	}
}
