package noc

import (
	"testing"

	"sst/internal/sim"
)

func newDetailed(t testing.TB, topo Topology, cfg NetConfig, buf int) (*sim.Engine, *DetailedNetwork) {
	t.Helper()
	e := sim.NewEngine()
	d, err := NewDetailedNetwork(e, "dnet", topo, cfg, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestDetailedTorusDatelineDeadlockFree(t *testing.T) {
	// Heavy random traffic around torus rings with single-packet buffers:
	// without the dateline virtual channels this wedges; with them every
	// message must deliver.
	for _, dims := range [][3]int{{4, 4, 1}, {3, 3, 3}, {8, 1, 1}} {
		topo, err := NewTorus3D(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxPacketBytes = 1024
		e, d := newDetailed(t, topo, cfg, 1024)
		rng := sim.NewRNG(5)
		total := 0
		for i := 0; i < topo.NumNodes(); i++ {
			d.NIC(i).SetReceiver(func(int, int, any) { total++ })
		}
		const msgs = 600
		for i := 0; i < msgs; i++ {
			src := rng.Intn(topo.NumNodes())
			dst := rng.Intn(topo.NumNodes())
			d.NIC(src).Send(dst, 1+int(rng.Uint64n(8000)), nil, nil)
		}
		e.RunAll()
		if total != msgs {
			t.Fatalf("%s: delivered %d/%d (torus deadlock?)", topo.Name(), total, msgs)
		}
	}
}

func TestDetailedTorusAllToAllStress(t *testing.T) {
	// All-to-all is the worst case for ring cycles: every node sends to
	// every other node simultaneously.
	topo, _ := NewTorus3D(4, 4, 1)
	cfg := DefaultConfig()
	e, d := newDetailed(t, topo, cfg, cfg.MaxPacketBytes)
	total := 0
	n := topo.NumNodes()
	for i := 0; i < n; i++ {
		d.NIC(i).SetReceiver(func(int, int, any) { total++ })
	}
	for s := 0; s < n; s++ {
		for r := 0; r < n; r++ {
			if s != r {
				d.NIC(s).Send(r, 8<<10, nil, nil)
			}
		}
	}
	e.RunAll()
	if total != n*(n-1) {
		t.Fatalf("all-to-all delivered %d/%d", total, n*(n-1))
	}
}

func TestDetailedBufferValidation(t *testing.T) {
	topo, _ := NewMesh2D(2, 2)
	e := sim.NewEngine()
	if _, err := NewDetailedNetwork(e, "d", topo, DefaultConfig(), 100, nil); err == nil {
		t.Fatal("sub-packet buffer accepted")
	}
	bad := NetConfig{}
	if _, err := NewDetailedNetwork(e, "d", topo, bad, 0, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDetailedMatchesFastUncontended(t *testing.T) {
	// A single message with no contention: the detailed model's latency
	// must equal the fast model's (same serialization + per-hop terms).
	topo, _ := NewMesh2D(4, 1)
	cfg := DefaultConfig()
	eF, fast := newNet(t, topo, cfg)
	var tFast sim.Time
	fast.NIC(3).SetReceiver(func(int, int, any) { tFast = eF.Now() })
	fast.NIC(0).Send(3, 1024, nil, nil)
	eF.RunAll()

	eD, det := newDetailed(t, topo, cfg, 0)
	var tDet sim.Time
	det.NIC(3).SetReceiver(func(int, int, any) { tDet = eD.Now() })
	det.NIC(0).Send(3, 1024, nil, nil)
	eD.RunAll()

	if tFast == 0 || tDet != tFast {
		t.Fatalf("uncontended latency: detailed %v vs fast %v", tDet, tFast)
	}
}

func TestDetailedBackpressureBoundsBuffers(t *testing.T) {
	// Hammer one ejection point from many sources: buffers must never
	// exceed capacity and blocking time must accumulate.
	topo, _ := NewMesh2D(8, 1)
	cfg := DefaultConfig()
	e, d := newDetailed(t, topo, cfg, 2*cfg.MaxPacketBytes)
	got := 0
	d.NIC(7).SetReceiver(func(int, int, any) { got++ })
	const msgs = 16
	for i := 0; i < 7; i++ {
		for m := 0; m < msgs; m++ {
			d.NIC(i).Send(7, 32<<10, nil, nil)
		}
	}
	e.RunAll()
	if got != 7*msgs {
		t.Fatalf("delivered %d/%d", got, 7*msgs)
	}
	if d.PeakBufferOccupancy() > int64(2*cfg.MaxPacketBytes) {
		t.Errorf("buffer occupancy %d exceeded capacity %d", d.PeakBufferOccupancy(), 2*cfg.MaxPacketBytes)
	}
	if d.CreditBlockedTime() == 0 {
		t.Error("no credit blocking under heavy contention")
	}
}

func TestDetailedCongestionSlowerThanFast(t *testing.T) {
	// Under contention the bounded-buffer model must be at least as slow
	// as the unbounded fast model (backpressure can only delay).
	run := func(detailed bool) sim.Time {
		topo, _ := NewMesh2D(4, 4)
		cfg := DefaultConfig()
		var last sim.Time
		if detailed {
			e, d := newDetailed(t, topo, cfg, 0)
			d.NIC(15).SetReceiver(func(int, int, any) { last = e.Now() })
			for i := 0; i < 15; i++ {
				d.NIC(i).Send(15, 256<<10, nil, nil)
			}
			e.RunAll()
			return last
		}
		e, n := newNet(t, topo, cfg)
		n.NIC(15).SetReceiver(func(int, int, any) { last = e.Now() })
		for i := 0; i < 15; i++ {
			n.NIC(i).Send(15, 256<<10, nil, nil)
		}
		e.RunAll()
		return last
	}
	fast := run(false)
	det := run(true)
	if det < fast {
		t.Errorf("detailed model (%v) finished before fast model (%v) under congestion", det, fast)
	}
}

func TestDetailedDeadlockFreeRandomTraffic(t *testing.T) {
	// Deadlock-freedom on cycle-free topologies: every message delivers
	// under sustained random traffic with tiny buffers.
	mk := []func() Topology{
		func() Topology { x, _ := NewMesh2D(4, 4); return x },
		func() Topology { x, _ := NewFatTree(4, 4, 2); return x },
		func() Topology { x, _ := NewHypercube(4); return x },
		func() Topology { x, _ := NewButterfly(4, 4); return x },
	}
	for _, build := range mk {
		topo := build()
		cfg := DefaultConfig()
		cfg.MaxPacketBytes = 1024
		e, d := newDetailed(t, topo, cfg, 1024) // single-packet buffers
		rng := sim.NewRNG(11)
		total := 0
		for i := 0; i < topo.NumNodes(); i++ {
			d.NIC(i).SetReceiver(func(int, int, any) { total++ })
		}
		const msgs = 400
		for i := 0; i < msgs; i++ {
			src := rng.Intn(topo.NumNodes())
			dst := rng.Intn(topo.NumNodes())
			d.NIC(src).Send(dst, 1+int(rng.Uint64n(6000)), nil, nil)
		}
		e.RunAll()
		if total != msgs {
			t.Fatalf("%s: delivered %d/%d (deadlock?)", topo.Name(), total, msgs)
		}
	}
}

func TestDetailedLoopbackAndAccessors(t *testing.T) {
	topo, _ := NewMesh2D(2, 2)
	e, d := newDetailed(t, topo, DefaultConfig(), 0)
	ok := false
	d.NIC(2).SetReceiver(func(src, size int, payload any) { ok = src == 2 && payload == "x" })
	d.NIC(2).Send(2, 64, "x", nil)
	e.RunAll()
	if !ok {
		t.Fatal("loopback failed")
	}
	if d.Topology() != topo || d.NIC(1).Node() != 1 || d.Name() != "dnet" {
		t.Fatal("accessors")
	}
	if d.Messages() != 1 || d.BytesDelivered() != 64 || d.MessageLatencyMean() <= 0 {
		t.Fatal("stats")
	}
}
