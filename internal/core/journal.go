package core

// Resumable sweeps: an append-only JSONL journal of completed design
// points. Each finished point appends one line — {"key","result"} on
// success, {"key","err"} on failure — and the file is fsync'd after every
// record, so a sweep killed at any instant loses at most the line being
// written. A kill mid-write leaves one truncated final line, which
// OpenJournal tolerates by truncating the file back to the last complete
// record before reopening it for append. Resuming a sweep skips every key
// with a successful entry (restoring its saved result into the grid) and
// re-runs failed or missing points, so an interrupted sweep converges to
// the same grid an uninterrupted one produces.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"sst/internal/iofault"
)

// ErrJournal marks a failure to open or durably write the sweep journal.
// It is a first-class sweep failure — exit code 1, not a failed-point
// exit 3 — because a sweep whose crash-safety layer is broken must not
// look like a sweep that merely had unlucky points: the operator has to
// fix the disk, not the design.
var ErrJournal = errors.New("journal write failed")

// journalEntry is one JSONL record: a point's stable key plus either its
// serialized result or its failure text, and any retries the point took
// on the way. Retries carry seeded backoff delays, so the record — and
// therefore the whole journal — is byte-identical across runs.
type journalEntry struct {
	Key     string          `json:"key"`
	Err     string          `json:"err,omitempty"`
	Retries []RetryRecord   `json:"retries,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// journalFile is the slice of *os.File the journal writes through; tests
// substitute a failing implementation to prove write and fsync errors
// surface as sweep failures.
type journalFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Journal is an append-only, crash-tolerant record of completed sweep
// points. Record is safe for concurrent use by the sweep worker pool.
type Journal struct {
	mu   sync.Mutex
	f    journalFile
	done map[string]journalEntry
}

// OpenJournal opens (creating if absent) the journal at path on the real
// filesystem. See OpenJournalFS.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return OpenJournalFS(iofault.Disk, path, resume)
}

// OpenJournalFS opens (creating if absent) the journal at path on fsys —
// the host-storage seam the crash-point harness substitutes a fault
// model for. When resume is true, every complete record already in the
// file is loaded and a truncated final line — the signature of a crash
// mid-append — is cut off; when false the file is started fresh.
func OpenJournalFS(fsys iofault.FS, path string, resume bool) (*Journal, error) {
	j := &Journal{done: make(map[string]journalEntry)}
	// The journal's crash promise ("loses at most the line being written")
	// needs the file's directory entry durable, not just its bytes: fsync
	// the parent directory once at open, after the file exists.
	syncParent := func() error {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("core: journal: parent dir fsync: %w: %w", ErrJournal, err)
		}
		return nil
	}
	if !resume {
		f, err := fsys.Create(path)
		if err != nil {
			return nil, fmt.Errorf("core: journal: %w: %w", ErrJournal, err)
		}
		if err := syncParent(); err != nil {
			f.Close()
			return nil, err
		}
		j.f = f
		return j, nil
	}
	raw, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("core: journal: %w: %w", ErrJournal, err)
	}
	// Scan complete lines, remembering the byte offset just past the last
	// record that parses; everything after it is a torn tail to discard.
	valid := 0
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // no terminator: torn final line
		}
		line := raw[off : off+nl]
		off += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			valid = off
			continue
		}
		var ent journalEntry
		if json.Unmarshal(line, &ent) != nil || ent.Key == "" {
			break // torn or corrupt: drop it and everything after
		}
		j.done[ent.Key] = ent
		valid = off
	}
	if valid < len(raw) {
		if err := fsys.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("core: journal: truncating torn tail: %w: %w", ErrJournal, err)
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("core: journal: %w: %w", ErrJournal, err)
	}
	if err := syncParent(); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// Completed returns the recorded entry for key, if any. Entries with a
// non-empty Err are failures; resume re-runs those points.
func (j *Journal) Completed(key string) (journalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ent, ok := j.done[key]
	return ent, ok
}

// Len reports how many distinct keys the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one point's outcome — including its retry history — and
// fsyncs it. result is ignored when perr is non-nil. Write and fsync
// failures wrap ErrJournal: the record cannot be trusted to survive a
// crash, so the sweep must fail loudly rather than pretend the point is
// durable.
func (j *Journal) Record(key string, result json.RawMessage, retries []RetryRecord, perr error) error {
	ent := journalEntry{Key: key, Retries: retries}
	if perr != nil {
		// First line only: the message without the stack trace behind it,
		// so failure records are as deterministic as success records.
		ent.Err = firstLine(perr.Error())
	} else {
		ent.Result = result
	}
	line, err := json.Marshal(ent)
	if err != nil {
		return fmt.Errorf("core: journal: %w: %w", ErrJournal, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("core: journal: %w: %w", ErrJournal, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("core: journal: fsync: %w: %w", ErrJournal, err)
	}
	j.done[key] = ent
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// pointIO tells runPointsJournaled how to identify and serialize one
// study's points: key must be stable across processes (it is the resume
// identity), save captures a finished point's result, load restores a
// previously journaled one into the grid.
type pointIO struct {
	key  func(i int) string
	save func(i int) (json.RawMessage, error)
	load func(i int, raw json.RawMessage) error
}

// journalOpen is OpenJournalFS behind a test seam: journal fault-injection
// tests substitute an opener whose file fails writes or fsyncs.
var journalOpen = OpenJournalFS

// runPointsJournaled is runPointsDetailed plus the crash-safety layer:
// with opts.Journal set, every finished point is durably recorded —
// retries included — and with opts.Resume the journal's successful points
// are restored instead of re-run. Points skipped by sweep cancellation
// are not journaled — they never ran — so a later resume picks them up.
// A journal write failure becomes the point's error (wrapping ErrJournal)
// rather than a silent skip; when the point itself also failed, the two
// errors are joined so neither is lost.
func runPointsJournaled(opts SweepOptions, n int, pio pointIO, fn func(ctx context.Context, i int) error) ([]error, error) {
	if opts.Journal == "" {
		return runPointsDetailed(opts, n, fn)
	}
	j, err := journalOpen(opts.fs(), opts.Journal, opts.Resume)
	if err != nil {
		return make([]error, n), err
	}
	defer j.Close()
	skip := make([]bool, n)
	if opts.Resume {
		for i := 0; i < n; i++ {
			ent, ok := j.Completed(pio.key(i))
			if !ok || ent.Err != "" {
				continue // missing or failed: re-run
			}
			if err := pio.load(i, ent.Result); err != nil {
				return make([]error, n), fmt.Errorf("core: journal: restoring point %q: %w", pio.key(i), err)
			}
			skip[i] = true
		}
	}
	wrapped := func(ctx context.Context, i int) error {
		if skip[i] {
			return nil
		}
		return fn(ctx, i)
	}
	return runPointsHooked(opts, n, wrapped, func(i int, retries []RetryRecord, rerr error) error {
		if skip[i] || errors.Is(rerr, errSkipped) {
			return rerr
		}
		var raw json.RawMessage
		if rerr == nil && pio.save != nil {
			var serr error
			if raw, serr = pio.save(i); serr != nil {
				rerr = fmt.Errorf("core: journal: serializing point %q: %w", pio.key(i), serr)
			}
		}
		if jerr := j.Record(pio.key(i), raw, retries, rerr); jerr != nil {
			if rerr == nil {
				rerr = jerr
			} else {
				rerr = errors.Join(rerr, jerr)
			}
		}
		return rerr
	})
}
