package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"sst/internal/cache"
	"sst/internal/config"
	"sst/internal/sim"
)

// Sweep memoization. Every design point in this package is a pure function
// of its fully-resolved configuration, so a content-addressed cache keyed
// by config.CanonicalHash (or an explicit versioned parameter key for the
// network/weak-scaling cells) can substitute a stored NodeResult for a
// re-simulation with no observable difference: the stored structs are
// plain value types, copied on both store and load, so a hit is
// field-for-field identical to the original run and immune to caller
// mutation. Repeated and overlapping grids — the common case for
// interactive DSE — then pay only for what is new.

// resultEnvelope wraps a cached value for the persistent tier with its
// concrete type, since a cache file can hold both node results and the
// scalar times of the network/weak-scaling studies.
type resultEnvelope struct {
	Kind string          `json:"kind"`
	Val  json.RawMessage `json:"val"`
}

// ResultCodec serializes the value types core studies cache — *NodeResult
// and sim.Time — using the same exact-round-trip JSON encoding as the
// sweep journal.
func ResultCodec() cache.Codec {
	return cache.Codec{
		Encode: func(v any) ([]byte, error) {
			var env resultEnvelope
			var err error
			switch x := v.(type) {
			case *NodeResult:
				env.Kind = "node"
				env.Val, err = json.Marshal(x)
			case sim.Time:
				env.Kind = "time"
				env.Val, err = json.Marshal(x)
			default:
				return nil, fmt.Errorf("core: cache codec: unsupported type %T", v)
			}
			if err != nil {
				return nil, err
			}
			return json.Marshal(env)
		},
		Decode: func(data []byte) (any, error) {
			var env resultEnvelope
			if err := json.Unmarshal(data, &env); err != nil {
				return nil, err
			}
			switch env.Kind {
			case "node":
				res := new(NodeResult)
				if err := json.Unmarshal(env.Val, res); err != nil {
					return nil, err
				}
				return res, nil
			case "time":
				var t sim.Time
				if err := json.Unmarshal(env.Val, &t); err != nil {
					return nil, err
				}
				return t, nil
			}
			return nil, fmt.Errorf("core: cache codec: unknown kind %q", env.Kind)
		},
	}
}

// NewSweepCache builds a result cache wired with the core codec; path ""
// means memory-only.
func NewSweepCache(capacity int, policy cache.PolicyType, shadows []cache.PolicyType, path string) (*cache.Cache, error) {
	return cache.New(cache.Options{
		Capacity: capacity,
		Policy:   policy,
		Shadows:  shadows,
		Path:     path,
		Codec:    ResultCodec(),
	})
}

// RunMachineCached is RunMachineCtx behind the result cache: a hit returns
// a copy of the stored NodeResult (and true) without building a node; a
// miss simulates, stores a copy, and returns the fresh result. A nil cache
// degrades to a plain RunMachineCtx. Config hashing failures are real
// errors (the config would not simulate either); cache file-tier failures
// never reach here — the cache degrades itself to in-memory-only and
// reports the fault through its Stats (a sweep must not fail because its
// accelerator's disk did). Put can still error on codec failures, which
// are propagated: they mean the result type itself cannot round-trip.
func RunMachineCached(ctx context.Context, c *cache.Cache, cfg *config.MachineConfig) (*NodeResult, bool, error) {
	if c == nil {
		res, err := RunMachineCtx(ctx, cfg)
		return res, false, err
	}
	key, err := cfg.CanonicalHash()
	if err != nil {
		return nil, false, err
	}
	if v, ok := c.Get(key); ok {
		cp := *(v.(*NodeResult)) // value struct: shallow copy is deep
		return &cp, true, nil
	}
	res, err := RunMachineCtx(ctx, cfg)
	if err != nil {
		return nil, false, err
	}
	cp := *res
	if err := c.Put(key, &cp, 0); err != nil {
		return nil, false, err
	}
	return res, false, nil
}

// runMachinePoint is the study-side helper: one design point through the
// sweep's cache, if any.
func runMachinePoint(ctx context.Context, opts SweepOptions, cfg *config.MachineConfig) (*NodeResult, error) {
	res, _, err := RunMachineCached(ctx, opts.Cache, cfg)
	return res, err
}

// cachedTime memoizes a scalar-time design point (network and weak-scaling
// cells) under an explicit versioned key.
func cachedTime(c *cache.Cache, key string, compute func() (sim.Time, error)) (sim.Time, error) {
	if c == nil {
		return compute()
	}
	if v, ok := c.Get(key); ok {
		return v.(sim.Time), nil
	}
	t, err := compute()
	if err != nil {
		return 0, err
	}
	if err := c.Put(key, t, 0); err != nil {
		return 0, err
	}
	return t, nil
}

// netPointKey addresses one network-study cell. The "net/v1" version tag
// covers everything the key cannot see — torusFor's shape choice and
// noc.DefaultConfig's parameters — so changing either orphans stale
// entries instead of serving them.
func netPointKey(profile string, nodes, steps int, fraction float64) string {
	return fmt.Sprintf("net/v1/%s/n%d/s%d/f%016x", profile, nodes, steps, math.Float64bits(fraction))
}

// weakPointKey addresses one weak-scaling cell; every SolverProfile field
// is load-bearing, so all of them are in the key.
func weakPointKey(p SolverProfile, ranks, iters int) string {
	return fmt.Sprintf("weak/v1/%s/h%d/nb%d/ar%d/xs%d/c%d/r%d/i%d",
		p.Name, p.HaloBytes, p.Neighbors, p.AllReduces, p.ExtraSmallMsgs, p.ComputePerIter, ranks, iters)
}
