// Package cache implements a content-addressed memoization layer for
// design-space sweeps: values keyed by a canonical hash of the fully
// resolved configuration that produced them. Because a sweep point is a
// pure function of its configuration, a hit is — by construction —
// equivalent to re-simulating the point, and invalidation reduces to "the
// key changed".
//
// The cache separates the value store from eviction metadata: pluggable
// policies (FIFO, LRU, LFU, TinyLFU with doorkeeper admission) order keys
// and nominate victims without ever touching values. That split buys two
// server-grade features:
//
//   - Shadow sensors: extra policies run metadata-only against the live
//     access stream and report the hit rate they *would* achieve, so an
//     operator can compare policies on real traffic before switching.
//   - Warm/gradual migration: the active policy can be replaced without
//     dropping values — warm rebuilds the new policy's order in one step,
//     gradual drains the old order key by key — so a resident server
//     switches strategies without a miss spike.
//
// An optional persistent tier appends every stored entry to an fsync'd
// JSONL file (the same crash-tolerant encoding the sweep journal uses,
// including torn-tail truncation on load), so a cache survives process
// restarts and a new invocation warm-starts from disk.
//
// The persistent tier is an accelerator, not a ledger: when the host
// storage under it starts failing mid-run (ENOSPC, fsync errors), the
// cache degrades to in-memory-only — the failing file is dropped, every
// Put keeps succeeding against RAM, and the degradation is visible in
// Stats (Degraded, AppendFailures) rather than in sweep errors. Sweep
// results are identical either way; only the next warm-start is poorer.
package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sst/internal/iofault"
)

// MigrationStrategy controls how the key order is transferred when the
// active eviction policy changes.
type MigrationStrategy int

const (
	// MigrationCold starts the new policy empty and drops every cached
	// value — the simplest switch, at the price of a miss spike.
	MigrationCold MigrationStrategy = iota
	// MigrationWarm rebuilds the new policy's metadata from the old
	// policy's cold→hot order in one step. No values are dropped, so the
	// hit rate is unaffected.
	MigrationWarm
	// MigrationGradual starts the new policy empty but keeps the old
	// policy's metadata alive: each access promotes its key into the new
	// policy, each store drains one additional cold key across, and
	// evictions prefer the old policy's victims. No values are dropped.
	MigrationGradual
)

// ParseMigration parses "cold", "warm" or "gradual".
func ParseMigration(s string) (MigrationStrategy, error) {
	switch s {
	case "cold":
		return MigrationCold, nil
	case "", "warm":
		return MigrationWarm, nil
	case "gradual":
		return MigrationGradual, nil
	}
	return MigrationWarm, fmt.Errorf("cache: unknown migration strategy %q (want cold, warm or gradual)", s)
}

// Codec serializes cache values for the persistent tier. Encode/Decode
// must round-trip exactly (encoding/json on float64 fields does).
type Codec struct {
	Encode func(v any) ([]byte, error)
	Decode func(data []byte) (any, error)
}

// Options configures a Cache.
type Options struct {
	// Capacity bounds resident entries; <= 0 means 1024.
	Capacity int
	// Policy selects the active eviction policy (default LRU).
	Policy PolicyType
	// Shadows lists policies to run as metadata-only hit/miss sensors.
	Shadows []PolicyType
	// Path, when non-empty, names the persistent JSONL tier: existing
	// entries are loaded at New (tolerating a torn final line) and every
	// Put is appended and fsync'd. Requires Codec.
	Path string
	// Codec serializes values for the persistent tier; also used to size
	// entries whose Put passes size <= 0.
	Codec Codec
	// FS, when non-nil, is the host-storage seam the persistent tier reads
	// and writes through; nil means the real filesystem (iofault.Disk).
	// The crash-point harness substitutes an iofault.MemFS here.
	FS iofault.FS
}

// Stats is a point-in-time snapshot of cache behavior, including the
// shadow sensors' counters. It marshals to the JSON reported through
// internal/obs RunReports.
type Stats struct {
	Policy     string        `json:"policy"`
	Capacity   int           `json:"capacity"`
	Entries    int           `json:"entries"`
	Bytes      int64         `json:"bytes"`
	Hits       int64         `json:"hits"`
	Misses     int64         `json:"misses"`
	Evictions  int64         `json:"evictions"`
	Rejected   int64         `json:"rejected"`
	WarmStarts int64         `json:"warm_starts"`
	HitRate    float64       `json:"hit_rate"`
	Migrating  string        `json:"migrating_from,omitempty"`
	Shadows    []ShadowStats `json:"shadows,omitempty"`

	// AppendFailures counts persistent-tier appends that failed (short
	// write, ENOSPC, fsync error); Degraded reports that the file tier has
	// been dropped because of one and the cache now runs in-memory-only.
	AppendFailures int64 `json:"append_failures,omitempty"`
	Degraded       bool  `json:"degraded,omitempty"`
}

// ShadowStats is one shadow sensor's would-be hit/miss tally.
type ShadowStats struct {
	Policy  string  `json:"policy"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// shadow runs one policy metadata-only against the live access stream.
type shadow struct {
	typ      PolicyType
	capacity int
	pol      evictor
	hits     int64
	misses   int64
}

// access mirrors Cache.Get on metadata: a resident key is a would-be hit.
func (s *shadow) access(key string) {
	if r, ok := s.pol.(recorder); ok {
		r.record(key)
	}
	if s.pol.has(key) {
		s.hits++
		s.pol.touch(key)
		return
	}
	s.misses++
}

// insert mirrors Cache.Put on metadata, honoring the policy's admission
// filter and capacity.
func (s *shadow) insert(key string) {
	if s.pol.has(key) {
		s.pol.touch(key)
		return
	}
	if a, ok := s.pol.(admitter); ok && s.pol.len() >= s.capacity && !a.admit(key) {
		return
	}
	s.pol.add(key)
	for s.pol.len() > s.capacity {
		v, ok := s.pol.victim()
		if !ok {
			break
		}
		s.pol.remove(v)
	}
}

// entry is one resident value plus its size accounting.
type entry struct {
	v    any
	size int64
}

// Cache is a bounded, content-addressed key→value store with pluggable
// eviction. All methods are safe for concurrent use by sweep workers.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ptype    PolicyType
	policy   evictor
	oldType  PolicyType
	old      evictor // non-nil while a gradual migration drains
	values   map[string]entry
	shadows  []*shadow
	codec    Codec

	fsys iofault.FS
	f    iofault.File
	path string

	bytes          int64
	hits           int64
	misses         int64
	evictions      int64
	rejected       int64
	warmStarts     int64
	appendFailures int64
	degraded       bool
}

// fileEntry is one persistent-tier JSONL record.
type fileEntry struct {
	Key  string          `json:"key"`
	Size int64           `json:"size"`
	Val  json.RawMessage `json:"val"`
}

// New builds a cache; with Options.Path set it warm-starts from the file's
// surviving records and opens it for fsync'd appends.
func New(opts Options) (*Cache, error) {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 1024
	}
	c := &Cache{
		capacity: capacity,
		ptype:    opts.Policy,
		policy:   newEvictor(opts.Policy, capacity),
		values:   make(map[string]entry, capacity),
		codec:    opts.Codec,
		path:     opts.Path,
		fsys:     opts.FS,
	}
	if c.fsys == nil {
		c.fsys = iofault.Disk
	}
	for _, st := range opts.Shadows {
		c.shadows = append(c.shadows, &shadow{typ: st, capacity: capacity, pol: newEvictor(st, capacity)})
	}
	if opts.Path != "" {
		if opts.Codec.Encode == nil || opts.Codec.Decode == nil {
			return nil, fmt.Errorf("cache: persistent tier %q needs a codec", opts.Path)
		}
		if err := c.openFile(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// openFile loads the persistent tier (truncating a torn tail, exactly like
// the sweep journal) and reopens it for append.
func (c *Cache) openFile() error {
	raw, err := c.fsys.ReadFile(c.path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: file tier: %w", err)
	}
	valid := 0
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // no terminator: torn final line
		}
		line := raw[off : off+nl]
		off += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			valid = off
			continue
		}
		var fe fileEntry
		if json.Unmarshal(line, &fe) != nil || fe.Key == "" {
			break // torn or corrupt: drop it and everything after
		}
		v, derr := c.codec.Decode(fe.Val)
		if derr != nil {
			break
		}
		c.insertLocked(fe.Key, v, fe.Size)
		c.warmStarts++
		valid = off
	}
	if valid < len(raw) {
		if err := c.fsys.Truncate(c.path, int64(valid)); err != nil {
			return fmt.Errorf("cache: file tier: truncating torn tail: %w", err)
		}
	}
	f, err := c.fsys.OpenAppend(c.path)
	if err != nil {
		return fmt.Errorf("cache: file tier: %w", err)
	}
	// The warm-start file is only worth its fsyncs if its directory entry is
	// durable too; one parent-dir fsync at open covers the file's lifetime.
	if err := c.fsys.SyncDir(filepath.Dir(c.path)); err != nil {
		f.Close()
		return fmt.Errorf("cache: file tier: parent dir fsync: %w", err)
	}
	c.f = f
	return nil
}

// Get returns the value stored under key. Every lookup — hit or miss —
// feeds the active policy's frequency estimator and the shadow sensors.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shadows {
		s.access(key)
	}
	if r, ok := c.policy.(recorder); ok {
		r.record(key)
	}
	ent, ok := c.values[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	if c.old != nil && c.old.has(key) {
		// Gradual migration: an accessed key promotes into the new policy.
		c.old.remove(key)
		c.policy.add(key)
	} else {
		c.policy.touch(key)
	}
	c.drainOne()
	return ent.v, true
}

// Put stores a deep-copy-owned value under key. size is the caller's
// resident-footprint estimate; <= 0 falls back to the codec's encoded
// length (or 1). The only error source is the codec: a persistent-tier
// append failure does not fail the Put — the value stays resident, the
// cache degrades to in-memory-only and the failure is counted in Stats.
func (c *Cache) Put(key string, v any, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shadows {
		s.insert(key)
	}
	var encoded []byte
	if c.codec.Encode != nil && (size <= 0 || c.f != nil) {
		var err error
		if encoded, err = c.codec.Encode(v); err != nil {
			return fmt.Errorf("cache: encoding %q: %w", key, err)
		}
	}
	if size <= 0 {
		size = int64(len(encoded))
		if size <= 0 {
			size = 1
		}
	}
	if old, ok := c.values[key]; ok {
		// Content-addressed: a re-store under the same key carries the
		// same value; refresh size accounting and recency only.
		c.bytes += size - old.size
		c.values[key] = entry{v: v, size: size}
		c.policy.touch(key)
		return nil
	}
	if a, ok := c.policy.(admitter); ok && len(c.values) >= c.capacity && !a.admit(key) {
		c.rejected++
		return nil
	}
	c.insertLocked(key, v, size)
	c.drainOne()
	if c.f != nil {
		c.appendLocked(key, encoded, size)
	}
	return nil
}

// insertLocked stores the value and evicts past capacity. Caller holds mu.
func (c *Cache) insertLocked(key string, v any, size int64) {
	if old, ok := c.values[key]; ok {
		c.bytes += size - old.size
		c.values[key] = entry{v: v, size: size}
		c.policy.touch(key)
		return
	}
	c.values[key] = entry{v: v, size: size}
	c.bytes += size
	c.policy.add(key)
	for len(c.values) > c.capacity {
		victim, ok := c.victimLocked()
		if !ok {
			break
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

// victimLocked nominates the next eviction: during a gradual migration the
// old policy's coldest key goes first.
func (c *Cache) victimLocked() (string, bool) {
	if c.old != nil {
		if v, ok := c.old.victim(); ok {
			return v, true
		}
	}
	return c.policy.victim()
}

// removeLocked drops a key from the store and both policies.
func (c *Cache) removeLocked(key string) {
	if ent, ok := c.values[key]; ok {
		c.bytes -= ent.size
		delete(c.values, key)
	}
	c.policy.remove(key)
	if c.old != nil {
		c.old.remove(key)
	}
}

// drainOne advances a gradual migration by one key and retires the old
// policy once empty. Caller holds mu.
func (c *Cache) drainOne() {
	if c.old == nil {
		return
	}
	if k, ok := c.old.victim(); ok {
		c.old.remove(k)
		c.policy.addCold(k)
	}
	if c.old.len() == 0 {
		c.old = nil
	}
}

// appendLocked writes one persistent-tier record and fsyncs it, mirroring
// the sweep journal's durability contract — except that a failure does not
// propagate: the tier degrades. The cache is a memoizer, so a sweep must
// never fail because its accelerator's disk filled up; the torn-tail load
// already makes a partially-appended record harmless on the next start.
func (c *Cache) appendLocked(key string, encoded []byte, size int64) {
	line, err := json.Marshal(fileEntry{Key: key, Size: size, Val: encoded})
	if err != nil {
		c.degradeLocked()
		return
	}
	line = append(line, '\n')
	if _, err := c.f.Write(line); err != nil {
		c.degradeLocked()
		return
	}
	if err := c.f.Sync(); err != nil {
		c.degradeLocked()
		return
	}
}

// degradeLocked drops the persistent tier after an append failure: close
// the failing file (best effort — the storage is already suspect) and run
// in-memory-only from here on. Counted, and surfaced through Stats.
func (c *Cache) degradeLocked() {
	c.appendFailures++
	c.degraded = true
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// Migrate switches the active eviction policy. Warm and gradual migrations
// keep every cached value (no miss spike); cold drops them all.
func (c *Cache) Migrate(to PolicyType, strategy MigrationStrategy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Flatten any in-flight gradual migration first so the order we hand
	// to the next policy covers every resident key.
	for c.old != nil {
		c.drainOne()
	}
	next := newEvictor(to, c.capacity)
	switch strategy {
	case MigrationCold:
		c.evictions += int64(len(c.values))
		c.values = make(map[string]entry, c.capacity)
		c.bytes = 0
		c.policy = next
		c.oldType = 0
		c.old = nil
	case MigrationGradual:
		c.oldType = c.ptype
		c.old = c.policy
		c.policy = next
	default: // MigrationWarm
		for _, k := range c.policy.keys() {
			next.add(k) // cold→hot insertion preserves relative temperature
		}
		c.policy = next
		c.oldType = 0
		c.old = nil
	}
	c.ptype = to
}

// Migrating reports whether a gradual migration is still draining.
func (c *Cache) Migrating() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.old != nil
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.values)
}

// Stats snapshots the counters, including each shadow sensor's.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Policy:     c.ptype.String(),
		Capacity:   c.capacity,
		Entries:    len(c.values),
		Bytes:      c.bytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Rejected:   c.rejected,
		WarmStarts: c.warmStarts,

		AppendFailures: c.appendFailures,
		Degraded:       c.degraded,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	if c.old != nil {
		s.Migrating = c.oldType.String()
	}
	for _, sh := range c.shadows {
		ss := ShadowStats{Policy: sh.typ.String(), Hits: sh.hits, Misses: sh.misses}
		if total := sh.hits + sh.misses; total > 0 {
			ss.HitRate = float64(sh.hits) / float64(total)
		}
		s.Shadows = append(s.Shadows, ss)
	}
	return s
}

// Close closes the persistent tier, if any. Safe to call repeatedly.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
