package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"sst/internal/config"
)

// Sweep-level parallelism. Every study in this package is a grid of fully
// independent design points: each point builds its own sim.Engine, its own
// component tree and its own stats.Registry, so points share no mutable
// state and may run on separate goroutines. runPoints fans a sweep's points
// across a bounded worker pool and each worker writes its result back by
// point index, which keeps result ordering — and therefore every rendered
// Fig. 10/11/12 table — bit-identical to a sequential sweep regardless of
// worker count or goroutine scheduling. (The engines themselves stay
// single-threaded; only whole design points are concurrent.)

// sweepWorkers holds the configured pool size; 0 means GOMAXPROCS.
var sweepWorkers atomic.Int64

// SetSweepWorkers fixes the number of worker goroutines sweep drivers use
// for independent design points. n <= 0 restores the default, GOMAXPROCS.
// It applies to sweeps started after the call.
func SetSweepWorkers(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int64(n))
}

// SweepWorkers reports the worker count the next sweep will use.
func SweepWorkers() int {
	if n := sweepWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints executes fn(i) for every i in [0, n) on a pool of SweepWorkers
// goroutines. Every point runs even when earlier points fail; the returned
// error joins all per-point errors in point order, so error text is as
// deterministic as the results. fn must confine its writes to per-index
// state (and its own locals) — that is what makes the fan-out race-free.
func runPoints(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := SweepWorkers()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunMachines runs independent machine configs across the sweep worker
// pool, returning results in config order. It is the batch counterpart of
// RunMachine for callers (the ablation benchmarks, external drivers) whose
// variants have no data dependencies between them.
func RunMachines(cfgs []*config.MachineConfig) ([]*NodeResult, error) {
	out := make([]*NodeResult, len(cfgs))
	err := runPoints(len(cfgs), func(i int) error {
		res, err := RunMachine(cfgs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
