// Command sst-asm assembles, disassembles and executes SR1 programs — the
// execution-driven front-end's ISA.
//
// Usage:
//
//	sst-asm [-run] [-max N] [-regs] program.s
//
// Without -run the assembled program is disassembled to stdout. With -run
// the program executes functionally (no timing) for at most -max
// instructions and reports the retired count; -regs also dumps nonzero
// registers.
package main

import (
	"flag"
	"fmt"
	"os"

	"sst/internal/isa"
)

func main() {
	var (
		runFlag  = flag.Bool("run", false, "execute the program functionally")
		maxFlag  = flag.Uint64("max", 100_000_000, "instruction budget for -run")
		regsFlag = flag.Bool("regs", false, "dump nonzero registers after -run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sst-asm [-run] [-max N] [-regs] program.s")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *runFlag, *maxFlag, *regsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "sst-asm:", err)
		os.Exit(1)
	}
}

func run(path string, execute bool, maxInstrs uint64, dumpRegs bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		return err
	}
	if !execute {
		text, err := prog.Disassemble()
		if err != nil {
			return err
		}
		fmt.Print(text)
		if len(prog.Labels) > 0 {
			fmt.Println("\nlabels:")
			for name, addr := range prog.Labels {
				fmt.Printf("  %-16s %#x\n", name, addr)
			}
		}
		return nil
	}
	m := isa.NewMachine(prog)
	n, err := m.Run(maxInstrs)
	if err != nil {
		return err
	}
	status := "halted"
	if !m.Halted() {
		status = "budget exhausted"
	}
	fmt.Printf("%s after %d instructions (pc=%#x)\n", status, n, m.PC)
	if dumpRegs {
		for r := 1; r < 32; r++ {
			if v := m.Reg(r); v != 0 {
				fmt.Printf("  r%-2d = %#x (%d)\n", r, v, int64(v))
			}
		}
	}
	return nil
}
