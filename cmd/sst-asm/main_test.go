package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sst/internal/cli"
	"sst/internal/core"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAsmDisassemble(t *testing.T) {
	path := writeProg(t, "addi r1, r0, 7\nend: halt")
	if err := run(path, false, 0, false, core.FormatTable, "", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestAsmExecute(t *testing.T) {
	path := writeProg(t, "addi r1, r0, 7\nhalt")
	if err := run(path, true, 100, true, core.FormatTable, "", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestAsmBudgetExhausted(t *testing.T) {
	path := writeProg(t, "loop: b loop")
	if err := run(path, true, 10, false, core.FormatTable, "", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestAsmObsOutputs(t *testing.T) {
	prog := writeProg(t, "addi r1, r0, 7\naddi r2, r1, 1\nhalt")
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")
	metrics := filepath.Join(dir, "m.json")
	if err := run(prog, true, 100, false, core.FormatJSON, trace, 0, metrics); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	data, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Instructions uint64 `json:"instructions"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if m.Instructions != 3 {
		t.Fatalf("metrics counted %d instructions, want 3", m.Instructions)
	}
}

func TestAsmErrors(t *testing.T) {
	err := run("/nonexistent.s", false, 0, false, core.FormatTable, "", 0, "")
	if err == nil {
		t.Error("missing file accepted")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("missing file maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
	path := writeProg(t, "bogus r1")
	err = run(path, false, 0, false, core.FormatTable, "", 0, "")
	if err == nil {
		t.Error("bad program assembled")
	} else if cli.Code(err) != cli.ExitConfig {
		t.Errorf("assembly error maps to exit %d, want %d", cli.Code(err), cli.ExitConfig)
	}
}
