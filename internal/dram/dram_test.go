package dram

import (
	"testing"
	"testing/quick"

	"sst/internal/sim"
	"sst/internal/stats"
)

func newMem(t testing.TB, cfg Config) (*sim.Engine, *Memory) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	m, err := New(e, "mem", cfg, reg.Scope("mem"))
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

func TestValidate(t *testing.T) {
	bad := DDR3_1333
	bad.RowBytes = 100 // not a multiple of line size
	if err := bad.Validate(); err == nil {
		t.Error("bad row size accepted")
	}
	bad = DDR3_1333
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = DDR3_1333
	bad.LineBytes = 48
	e := sim.NewEngine()
	if _, err := New(e, "m", bad, nil); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	for name, cfg := range Presets() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestPreset(t *testing.T) {
	if _, err := Preset("ddr3-1333"); err != nil {
		t.Fatal(err)
	}
	if _, err := Preset("sdram-66"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	c := DDR3_1333.WithChannels(4).WithScheduler(FCFS).WithMapping(MapSequential)
	if c.Channels != 4 || c.Scheduler != FCFS || c.Mapping != MapSequential {
		t.Fatal("With* builders broken")
	}
}

func TestIdleReadLatency(t *testing.T) {
	e, m := newMem(t, DDR3_1333)
	var done sim.Time
	m.Access(0, false, func() { done = e.Now() })
	e.RunAll()
	want := m.cfg.IdleLatency()
	if done != want {
		t.Fatalf("idle read latency = %v, want %v", done, want)
	}
}

func TestRowHitsSequentialStream(t *testing.T) {
	// Consecutive lines with interleaved mapping rotate across banks;
	// after the first lap every access is a row hit.
	e, m := newMem(t, DDR3_1333)
	const n = 512
	doneCount := 0
	for i := 0; i < n; i++ {
		m.Access(uint64(i*64), false, func() { doneCount++ })
	}
	e.RunAll()
	if doneCount != n {
		t.Fatalf("completed %d/%d", doneCount, n)
	}
	if hr := m.RowHitRate(); hr < 0.9 {
		t.Errorf("streaming row hit rate = %.2f, want > 0.9", hr)
	}
}

func TestRowConflictsRandomStream(t *testing.T) {
	e, m := newMem(t, DDR3_1333)
	rng := sim.NewRNG(1)
	const n = 512
	for i := 0; i < n; i++ {
		m.Access(rng.Uint64n(1<<30)&^63, false, nil)
	}
	e.RunAll()
	if hr := m.RowHitRate(); hr > 0.5 {
		t.Errorf("random row hit rate = %.2f, expected low", hr)
	}
	if m.rowConflicts.Count() == 0 {
		t.Error("no row conflicts on random traffic")
	}
}

func TestStreamingBandwidth(t *testing.T) {
	// A deep sequential stream should achieve a large fraction of peak.
	e, m := newMem(t, DDR3_1333)
	const n = 4096
	next := 0
	var issue func()
	outstanding := 0
	issue = func() {
		for outstanding < 32 && next < n {
			addr := uint64(next * 64)
			next++
			outstanding++
			m.Access(addr, false, func() {
				outstanding--
				issue()
			})
		}
	}
	issue()
	e.RunAll()
	achieved := float64(n*64) / e.Now().Seconds()
	peak := m.cfg.PeakBandwidth()
	if achieved < 0.5*peak {
		t.Errorf("streaming bandwidth %.2f GB/s < 50%% of peak %.2f GB/s",
			achieved/1e9, peak/1e9)
	}
}

func TestBandwidthOrderingAcrossTechnologies(t *testing.T) {
	// The core premise of the Fig. 10 study: achieved streaming bandwidth
	// must order DDR2 < DDR3 < GDDR5.
	run := func(cfg Config) float64 {
		e, m := newMem(t, cfg)
		const n = 2048
		next, outstanding := 0, 0
		var issue func()
		issue = func() {
			for outstanding < 32 && next < n {
				addr := uint64(next * 64)
				next++
				outstanding++
				m.Access(addr, false, func() { outstanding--; issue() })
			}
		}
		issue()
		e.RunAll()
		return float64(n*64) / e.Now().Seconds()
	}
	ddr2 := run(DDR2_800)
	ddr3 := run(DDR3_1333)
	gddr5 := run(GDDR5_4000)
	if !(ddr2 < ddr3 && ddr3 < gddr5) {
		t.Errorf("bandwidth ordering broken: ddr2=%.1f ddr3=%.1f gddr5=%.1f GB/s",
			ddr2/1e9, ddr3/1e9, gddr5/1e9)
	}
	if gddr5 < 2*ddr3 {
		t.Errorf("gddr5 %.1f GB/s should be well over 2x ddr3 %.1f GB/s", gddr5/1e9, ddr3/1e9)
	}
}

func TestFRFCFSBeatsFCFS(t *testing.T) {
	// Interleave two streams: one hammering a single row, one touching a
	// conflicting row in the same bank. FR-FCFS should finish sooner.
	pattern := func() []uint64 {
		var addrs []uint64
		lineStride := uint64(64 * 1 * 8) // same channel+bank (1ch cfg: stride = 64*nbanks... use mapping: bank repeats every nbk lines)
		rowSpan := lineStride * 128      // 8KB row / 64B = 128 lines per row
		for i := uint64(0); i < 64; i++ {
			addrs = append(addrs, i%4*lineStride*0+i*0+0+i%2*rowSpan*3+(i/2)*lineStride)
		}
		return addrs
	}
	run := func(s SchedulerKind) sim.Time {
		cfg := DDR3_1333.WithScheduler(s)
		e, m := newMem(t, cfg)
		for _, a := range pattern() {
			m.Access(a, false, nil)
		}
		e.RunAll()
		return e.Now()
	}
	fcfs := run(FCFS)
	frfcfs := run(FRFCFS)
	if frfcfs > fcfs {
		t.Errorf("FR-FCFS (%v) slower than FCFS (%v)", frfcfs, fcfs)
	}
}

func TestPostedWrites(t *testing.T) {
	e, m := newMem(t, DDR3_1333)
	for i := 0; i < 16; i++ {
		m.Access(uint64(i*64), true, nil)
	}
	e.RunAll()
	if m.writes.Count() != 16 {
		t.Fatalf("writes = %d", m.writes.Count())
	}
	if m.bytes.Count() != 16*64 {
		t.Fatalf("bytes = %d", m.bytes.Count())
	}
}

func TestRefreshSelfDisarms(t *testing.T) {
	// One access arms refresh; the queue must drain on its own (refresh
	// must not keep the simulation alive forever).
	e, m := newMem(t, DDR3_1333)
	m.Access(0, false, nil)
	e.RunAll() // would hang/never return if refresh re-armed forever
	if m.refreshes.Count() == 0 {
		t.Error("no refresh fired")
	}
	if e.Now() > 10*m.cfg.TREFI {
		t.Errorf("refresh kept rescheduling until %v", e.Now())
	}
}

func TestRefreshDelaysAccess(t *testing.T) {
	cfg := DDR3_1333
	e, m := newMem(t, cfg)
	// Arm refresh with an initial access, then access just after a
	// refresh fires: should see tRFC delay.
	m.Access(0, false, nil)
	var lat sim.Time
	e.Schedule(cfg.TREFI+sim.Nanosecond, func(any) {
		start := e.Now()
		m.Access(0, false, func() { lat = e.Now() - start })
	}, nil)
	e.RunAll()
	if lat <= cfg.IdleLatency() {
		t.Errorf("post-refresh latency %v not above idle %v", lat, cfg.IdleLatency())
	}
}

func TestMappingPartitions(t *testing.T) {
	// Address mapping property: distinct lines within one row span map to
	// the same (ch,bank,row) iff their row-relative index matches, and
	// the mapping covers all banks/channels uniformly.
	cfg := DDR3_1333.WithChannels(2)
	_, m := newMem(t, cfg)
	fn := func(raw uint32) bool {
		addr := uint64(raw) * 64
		ch, bk, _ := m.mapAddr(addr)
		return ch >= 0 && ch < cfg.Channels && bk >= 0 && bk < cfg.BanksPerChannel
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
	// Uniform coverage over a contiguous region.
	counts := make(map[[2]int]int)
	for i := 0; i < 1024; i++ {
		ch, bk, _ := m.mapAddr(uint64(i * 64))
		counts[[2]int{ch, bk}]++
	}
	want := 1024 / (cfg.Channels * cfg.BanksPerChannel)
	for k, c := range counts {
		if c != want {
			t.Fatalf("mapping skew at %v: %d, want %d", k, c, want)
		}
	}
}

func TestSequentialMappingRowLocality(t *testing.T) {
	cfg := DDR3_1333.WithMapping(MapSequential)
	_, m := newMem(t, cfg)
	ch0, bk0, row0 := m.mapAddr(0)
	ch1, bk1, row1 := m.mapAddr(64)
	if ch0 != ch1 || bk0 != bk1 || row0 != row1 {
		t.Fatal("sequential mapping: consecutive lines should share a row")
	}
	_, _, rowN := m.mapAddr(uint64(cfg.RowBytes))
	_, bkN, _ := m.mapAddr(uint64(cfg.RowBytes))
	if bkN == bk0 && rowN == row0 {
		t.Fatal("sequential mapping: next row span should move bank or row")
	}
}

func TestEnergyAccounting(t *testing.T) {
	e, m := newMem(t, DDR3_1333)
	m.Access(0, false, nil)
	e.RunAll()
	wantMin := m.cfg.Energy.ActivateJ + m.cfg.Energy.PerByteJ*64
	if m.DynamicEnergyJ() < wantMin {
		t.Errorf("dynamic energy %.3g < activate+transfer %.3g", m.DynamicEnergyJ(), wantMin)
	}
	if m.EnergyJ() <= m.DynamicEnergyJ() {
		t.Error("total energy missing background component")
	}
	if m.AvgPowerW() <= 0 {
		t.Error("average power not positive")
	}
}

func TestPeakBandwidthFormula(t *testing.T) {
	got := DDR3_1333.PeakBandwidth()
	want := 2.0 * 666e6 * 8 // DDR, 8 bytes wide
	if got != want {
		t.Fatalf("peak = %v, want %v", got, want)
	}
	if DDR3_1333.WithChannels(2).PeakBandwidth() != 2*want {
		t.Fatal("channel scaling broken")
	}
}

func TestQueueDepthAndStats(t *testing.T) {
	e, m := newMem(t, DDR3_1333)
	for i := 0; i < 64; i++ {
		m.Access(uint64(i)*1<<20, false, nil)
	}
	if m.QueueDepth() == 0 {
		t.Error("queue empty immediately after burst enqueue")
	}
	e.RunAll()
	if m.QueueDepth() != 0 {
		t.Errorf("queue depth %d after drain", m.QueueDepth())
	}
	if m.reads.Count() != 64 {
		t.Errorf("reads = %d", m.reads.Count())
	}
	if m.AchievedBandwidth() <= 0 {
		t.Error("achieved bandwidth not positive")
	}
}

func TestSchedulerKindString(t *testing.T) {
	if FCFS.String() != "fcfs" || FRFCFS.String() != "fr-fcfs" {
		t.Fatal("scheduler names")
	}
	if MapInterleave.String() != "interleave" || MapSequential.String() != "sequential" {
		t.Fatal("mapping names")
	}
	if SchedulerKind(9).String() == "" || MappingKind(9).String() == "" {
		t.Fatal("unknown kind strings empty")
	}
}

func BenchmarkDRAMRandomAccess(b *testing.B) {
	e := sim.NewEngine()
	m, err := New(e, "mem", DDR3_1333, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(3)
	b.ReportAllocs()
	outstanding := 0
	i := 0
	var issue func()
	issue = func() {
		for outstanding < 16 && i < b.N {
			i++
			outstanding++
			m.Access(rng.Uint64n(1<<30)&^63, false, func() { outstanding--; issue() })
		}
	}
	issue()
	e.RunAll()
}
