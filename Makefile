# gosst build/verify entry points.
#
#   make check      — the CI gate: vet + full tests + race on the packages
#                     with concurrency (sim kernel, parallel runtime,
#                     sweeps, fault injection) + a short fuzz pass over the
#                     config parsers
#   make bench      — regenerate every experiment table ("reproduce the paper")
#   make fuzz-short — a few seconds of coverage-guided fuzzing per config
#                     loader; crashes fail the target

GO ?= go
FUZZTIME ?= 5s

.PHONY: build test vet race check bench fuzz-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep scheduler (internal/core), the PDES runtime (internal/par), the
# event kernel they drive (internal/sim) and the fault injectors that hook
# all three (internal/fault) are the only places goroutines touch shared
# structures; the race detector must stay clean there.
race:
	$(GO) test -race ./internal/sim/... ./internal/par/... ./internal/core/... ./internal/fault/...

# Coverage-guided fuzzing of the AMM JSON loaders: arbitrary input must
# produce a validated config or an error, never a panic or a NaN/Inf/zero
# value the simulator would choke on later.
fuzz-short:
	$(GO) test ./internal/config -run='^$$' -fuzz=FuzzLoadMachine -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/config -run='^$$' -fuzz=FuzzLoadSystem -fuzztime=$(FUZZTIME)

check: build vet test race fuzz-short

bench:
	$(GO) test -bench=. -benchtime=1x
