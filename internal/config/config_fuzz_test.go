package config

import (
	"math"
	"strings"
	"testing"
)

// Fuzz targets for the JSON loaders: arbitrary input must produce either a
// validated config or an error — never a panic, and never a config that
// smuggles a non-finite or non-positive value past validation into the
// simulator (where a NaN bandwidth poisons every derived metric and a
// zero link latency destroys the parallel lookahead).

const fuzzMachineSeed = `{
  "name": "node-ddr3-w4",
  "node": {
    "cores": 1,
    "cpu": {"kind": "superscalar", "freq": "3.2GHz", "width": 4, "loadq": 32, "storeq": 32, "predictor": 1024},
    "l1": {"size": "32KB", "assoc": 4, "hit_lat": 2, "mshrs": 16, "prefetch": true, "prefetch_degree": 2},
    "l2": {"size": "256KB", "assoc": 8, "hit_lat": 10, "mshrs": 32, "prefetch": true, "prefetch_degree": 8},
    "memory": {"preset": "ddr3-1333", "channels": 1, "capacity_gb": 4}
  },
  "workload": {"kind": "lulesh", "n": 8192, "iters": 1}
}`

const fuzzSystemSeed = `{
  "name": "torus-32",
  "topology": {"kind": "torus", "x": 4, "y": 4, "z": 2},
  "network": {"link_bw": 3.2e9, "inject_bw": 3.2e9, "link_lat": "100ns", "router_lat": "50ns"},
  "app": "cth",
  "steps": 6
}`

func FuzzLoadMachine(f *testing.F) {
	f.Add(fuzzMachineSeed)
	f.Add(`{"name":"x","node":{"cpu":{"kind":"inorder","freq":"1GHz"},"memory":{"preset":"ddr3-1333"}},"workload":{"kind":"stream"}}`)
	f.Add(`{"name":"x","node":{"cpu":{"kind":"inorder","freq":"-1GHz"},"memory":{"preset":"ddr3-1333"}},"workload":{"kind":"stream"}}`)
	f.Add(`{"name":"x","node":{"l1":{"size":"999999999GB"}}}`)
	f.Add(`{"name":"x","node":{"memory":{"capacity_gb":-4}}}`)
	f.Add(`{"name":`)
	f.Fuzz(func(t *testing.T, data string) {
		m, err := LoadMachine(strings.NewReader(data))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil config with nil error")
		}
		// Whatever validated must be sane enough to price and build.
		if c := m.Node.Mem.Capacity(); math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
			t.Fatalf("validated config has unusable capacity %v", c)
		}
		if m.Node.Cores <= 0 {
			t.Fatalf("validated config has %d cores", m.Node.Cores)
		}
	})
}

func FuzzLoadSystem(f *testing.F) {
	f.Add(fuzzSystemSeed)
	f.Add(`{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":1e9,"inject_bw":1e9,"link_lat":"0ns"},"app":"cth"}`)
	f.Add(`{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":1e9,"inject_bw":1e9,"link_lat":"-5ns"},"app":"sage"}`)
	f.Add(`{"name":"x","topology":{"kind":"mesh2d","x":2,"y":2},"network":{"link_bw":-1,"inject_bw":1e9,"link_lat":"10ns"},"app":"cth"}`)
	f.Add(`{"link_bw": 1e999}`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := LoadSystem(strings.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil config with nil error")
		}
		// The invariants the parallel runtime depends on: positive, finite
		// link latency and bandwidths.
		nc, err := s.Net.ToNetConfig()
		if err != nil {
			t.Fatalf("validated system fails ToNetConfig: %v", err)
		}
		if nc.LinkLatency <= 0 {
			t.Fatalf("validated system has link latency %v", nc.LinkLatency)
		}
		for _, bw := range []float64{nc.LinkBandwidth, nc.InjectionBandwidth} {
			if math.IsNaN(bw) || math.IsInf(bw, 0) || bw <= 0 {
				t.Fatalf("validated system has bandwidth %v", bw)
			}
		}
	})
}

// TestLoadRejectsHostileValues pins the specific repairs behind the fuzz
// targets as plain unit cases, so they are exercised on every `go test`
// run, not only under -fuzz.
func TestLoadRejectsHostileValues(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
		system              bool
	}{
		{"zero link_lat", `{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":1e9,"inject_bw":1e9,"link_lat":"0ns"},"app":"cth"}`,
			"network.link_lat", true},
		{"negative link_lat", `{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":1e9,"inject_bw":1e9,"link_lat":"-5ns"},"app":"cth"}`,
			"network.link_lat", true},
		{"bad router_lat", `{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":1e9,"inject_bw":1e9,"link_lat":"5ns","router_lat":"fast"},"app":"cth"}`,
			"network.router_lat", true},
		{"negative link_bw", `{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":-1,"inject_bw":1e9,"link_lat":"5ns"},"app":"cth"}`,
			"network.link_bw", true},
		{"zero inject_bw", `{"name":"x","topology":{"kind":"crossbar","n":4},"network":{"link_bw":1e9,"inject_bw":0,"link_lat":"5ns"},"app":"cth"}`,
			"network.inject_bw", true},
		{"negative capacity", `{"name":"x","node":{"cpu":{"kind":"inorder","freq":"1GHz"},"memory":{"preset":"ddr3-1333","capacity_gb":-4}},"workload":{"kind":"stream"}}`,
			"capacity_gb", false},
		{"size overflow", `{"name":"x","node":{"cpu":{"kind":"inorder","freq":"1GHz"},"l1":{"size":"99999999999GB","assoc":4,"hit_lat":2},"memory":{"preset":"ddr3-1333"}},"workload":{"kind":"stream"}}`,
			"overflows", false},
	}
	for _, c := range cases {
		var err error
		if c.system {
			_, err = LoadSystem(strings.NewReader(c.json))
		} else {
			_, err = LoadMachine(strings.NewReader(c.json))
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not name the field (%q)", c.name, err, c.wantErr)
		}
	}
}
