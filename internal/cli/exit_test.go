package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sst/internal/core"
	"sst/internal/sim"
)

func TestCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"ok", nil, ExitOK},
		{"generic", errors.New("boom"), ExitFailure},
		{"config", Configf("bad width %q", "x"), ExitConfig},
		{"config wrapping cause", Configf("load: %w", errors.New("no such file")), ExitConfig},
		{"interrupted engine", fmt.Errorf("run: %w", sim.ErrInterrupted), ExitInterrupted},
		{"interrupted sweep", fmt.Errorf("%w: %w", core.ErrPointFailed,
			fmt.Errorf("point skipped: %w", context.Canceled)), ExitInterrupted},
		{"failed point", fmt.Errorf("%w: %w", core.ErrPointFailed, errors.New("panic")), ExitPointFailed},
		{"timed-out point", fmt.Errorf("%w: %w", core.ErrPointFailed,
			fmt.Errorf("timed out: %w", context.DeadlineExceeded)), ExitPointFailed},
		{"journal failure", fmt.Errorf("sweep: %w", core.ErrJournal), ExitFailure},
		// A point that failed AND could not be journaled is a journal
		// failure first: the crash-safety layer broke, so exit 1 outranks 3.
		{"journal failure joined with point failure", errors.Join(
			fmt.Errorf("%w: %w", core.ErrPointFailed, errors.New("panic")),
			fmt.Errorf("record: %w", core.ErrJournal)), ExitFailure},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("%s: Code(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}
