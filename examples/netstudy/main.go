// Netstudy: how much network does an application actually need?
//
// This example reproduces the injection-bandwidth degradation methodology
// at example scale: four application communication proxies run on a
// simulated 3D torus while the NIC injection bandwidth is dialed down to
// 1/2, 1/4 and 1/8. Large-message halo-exchange codes (CTH-, SAGE-like)
// slow dramatically; small-message latency-bound codes (Charon-like)
// barely notice — meaning their network could run at an eighth of the
// power.
//
// Run with: go run ./examples/netstudy
package main

import (
	"fmt"
	"log"
	"os"

	"sst/internal/core"
)

func main() {
	cfg := core.NetStudyConfig{
		Nodes:     16,
		Fractions: []float64{1, 0.5, 0.25, 0.125},
		Steps:     4,
	}
	res, err := core.NetDegradationStudy(cfg, core.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Render(os.Stdout)
	slow := res.Slowdown

	fmt.Println()
	for app, s := range map[string]float64{
		"cth":    slow["cth"][len(slow["cth"])-1],
		"charon": slow["charon"][len(slow["charon"])-1],
	} {
		if s > 1.5 {
			fmt.Printf("%s: %.1fx slower at 1/8 bandwidth — keep the fast network\n", app, s)
		} else {
			fmt.Printf("%s: only %.2fx slower at 1/8 bandwidth — candidate for network power saving\n", app, s)
		}
	}
}
