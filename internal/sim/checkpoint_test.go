package sim_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sst/internal/sim"
)

// --- encoding round trips ---

func TestEncoderDecoderRoundTrip(t *testing.T) {
	enc := sim.NewEncoder()
	enc.U64(0)
	enc.U64(1<<63 + 12345)
	enc.I64(-42)
	enc.I64(1 << 60)
	enc.Time(sim.Time(987654321))
	enc.Bool(true)
	enc.Bool(false)
	enc.F64(3.141592653589793)
	enc.F64(math.Copysign(0, -1))
	enc.String("hello, snapshot")
	enc.String("")
	enc.Blob([]byte{0xde, 0xad, 0xbe, 0xef})

	dec := sim.NewDecoder(enc.Bytes())
	if got := dec.U64(); got != 0 {
		t.Errorf("U64 = %d, want 0", got)
	}
	if got := dec.U64(); got != 1<<63+12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := dec.I64(); got != -42 {
		t.Errorf("I64 = %d, want -42", got)
	}
	if got := dec.I64(); got != 1<<60 {
		t.Errorf("I64 = %d", got)
	}
	if got := dec.Time(); got != sim.Time(987654321) {
		t.Errorf("Time = %v", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := dec.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := dec.F64(); got != 0 || !math.Signbit(got) {
		t.Errorf("F64 -0.0 = %v (bits must survive)", got)
	}
	if got := dec.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := dec.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := dec.Blob(); !bytes.Equal(got, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("Blob = %x", got)
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if dec.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", dec.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	enc := sim.NewEncoder()
	enc.U64(7)
	dec := sim.NewDecoder(enc.Bytes())
	dec.U64()
	dec.U64() // past the end
	if dec.Err() == nil {
		t.Fatal("no error after reading past the end")
	}
	if got := dec.U64(); got != 0 {
		t.Errorf("post-error read = %d, want 0", got)
	}
	// Truncated blob: length says 100, only 1 byte present.
	enc2 := sim.NewEncoder()
	enc2.U64(100)
	dec2 := sim.NewDecoder(append(enc2.Bytes(), 0xff))
	if dec2.Blob() != nil || dec2.Err() == nil {
		t.Fatal("truncated blob not rejected")
	}
}

func TestSnapshotContainer(t *testing.T) {
	body := []byte("snapshot body bytes")
	var buf bytes.Buffer
	if err := sim.WriteSnapshot(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := sim.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body round trip: %q != %q", got, body)
	}
	// Flip a body byte: checksum must catch it.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[20] ^= 0x40
	if _, err := sim.ReadSnapshot(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt body: err = %v, want checksum mismatch", err)
	}
	// Bad magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] = 'X'
	if _, err := sim.ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	// Truncated file.
	if _, err := sim.ReadSnapshot(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated container not rejected")
	}
}

// --- a checkpointable model ---

// pinger exercises every ownership mechanism: clock ticks, EventSet
// self-events, link deliveries and RNG state.
type pinger struct {
	name  string
	eng   *sim.Engine
	set   *sim.EventSet
	out   *sim.Port
	rng   *sim.RNG
	count uint64
	sum   uint64
}

func (p *pinger) Name() string { return p.name }

func (p *pinger) tick(cycle sim.Cycle) bool {
	p.sum = p.sum*0x100000001b3 ^ p.rng.Uint64()
	if cycle%3 == 0 {
		p.set.ScheduleAt(p.eng.Now()+7*sim.Nanosecond, sim.PrioLink, uint64(cycle))
	}
	return true
}

func (p *pinger) fire(payload any) {
	v := payload.(uint64)
	p.sum ^= v * 0x9e3779b97f4a7c15
	p.out.Send(int(v & 0xffff))
}

func (p *pinger) recv(payload any) {
	p.count++
	p.sum = p.sum*0x100000001b3 ^ (uint64(p.eng.Now()) + uint64(int64(payload.(int))))
}

func (p *pinger) SaveState(enc *sim.Encoder) {
	enc.U64(p.count)
	enc.U64(p.sum)
	p.rng.SaveState(enc)
	p.set.Save(enc)
}

func (p *pinger) LoadState(dec *sim.Decoder) error {
	p.count = dec.U64()
	p.sum = dec.U64()
	if err := p.rng.LoadState(dec); err != nil {
		return err
	}
	return p.set.Load(dec)
}

func (p *pinger) PendingOwned() int { return p.set.PendingOwned() }

// buildPingModel constructs the two-pinger model; construction is
// deterministic, which is the rebuild contract Restore depends on.
func buildPingModel(snapshots bool) (*sim.Simulation, *pinger, *pinger) {
	s := sim.New()
	if snapshots {
		s.Engine().EnableSnapshots()
	}
	a := &pinger{name: "a", eng: s.Engine(), rng: sim.NewRNG(11)}
	b := &pinger{name: "b", eng: s.Engine(), rng: sim.NewRNG(22)}
	a.set = sim.NewEventSet(s.Engine(), "a.set", a.fire)
	b.set = sim.NewEventSet(s.Engine(), "b.set", b.fire)
	s.Add(a)
	s.Add(b)
	pa, pb := s.Connect("ab", 5*sim.Nanosecond)
	a.out, b.out = pa, pb
	pa.SetHandler(a.recv)
	pb.SetHandler(b.recv)
	clk := s.Clock(500 * sim.MHz)
	clk.RegisterNamed("a", a.tick)
	clk.RegisterNamed("b", b.tick)
	return s, a, b
}

type pingSig struct {
	ACount, ASum, BCount, BSum uint64
	Now                        sim.Time
	Handled                    uint64
}

func pingSigOf(s *sim.Simulation, a, b *pinger) pingSig {
	return pingSig{a.count, a.sum, b.count, b.sum, s.Now(), s.Engine().Handled()}
}

func TestEngineSnapshotRestoreBitIdentical(t *testing.T) {
	const barrier = 1537 * sim.Nanosecond
	const end = 5 * sim.Microsecond

	// Reference: uninterrupted run, snapshots enabled (tracking on) and
	// disabled (tracking off) must agree — tracking is non-intrusive.
	sPlain, aPlain, bPlain := buildPingModel(false)
	sPlain.Run(end)
	want := pingSigOf(sPlain, aPlain, bPlain)

	sRef, aRef, bRef := buildPingModel(true)
	sRef.Run(end)
	if got := pingSigOf(sRef, aRef, bRef); got != want {
		t.Fatalf("snapshot tracking perturbed the run: %+v != %+v", got, want)
	}

	// Crash run: stop at the barrier, snapshot, discard.
	s1, _, _ := buildPingModel(true)
	s1.Run(barrier)
	var file bytes.Buffer
	if err := s1.Engine().SaveTo(&file); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	// Restore into a freshly built model and continue.
	s2, a2, b2 := buildPingModel(true)
	if err := s2.Engine().LoadFrom(bytes.NewReader(file.Bytes())); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if s2.Now() != barrier {
		t.Fatalf("restored clock %v, want %v", s2.Now(), barrier)
	}
	s2.Run(end)
	if got := pingSigOf(s2, a2, b2); got != want {
		t.Fatalf("restored run diverged: %+v != %+v", got, want)
	}

	// Snapshots must also be byte-identical when taken at the same barrier
	// of the restored run's past (determinism of the encoding itself).
	s3, _, _ := buildPingModel(true)
	s3.Run(barrier)
	var file2 bytes.Buffer
	if err := s3.Engine().SaveTo(&file2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(file.Bytes(), file2.Bytes()) {
		t.Fatal("two snapshots of identical runs differ byte-for-byte")
	}
}

func TestSnapshotEveryBarrierBitIdentical(t *testing.T) {
	const end = 2 * sim.Microsecond
	sPlain, aPlain, bPlain := buildPingModel(false)
	sPlain.Run(end)
	want := pingSigOf(sPlain, aPlain, bPlain)

	for barrier := 100 * sim.Nanosecond; barrier < end; barrier += 333 * sim.Nanosecond {
		s1, _, _ := buildPingModel(true)
		s1.Run(barrier)
		var file bytes.Buffer
		if err := s1.Engine().SaveTo(&file); err != nil {
			t.Fatalf("barrier %v: SaveTo: %v", barrier, err)
		}
		s2, a2, b2 := buildPingModel(true)
		if err := s2.Engine().LoadFrom(&file); err != nil {
			t.Fatalf("barrier %v: LoadFrom: %v", barrier, err)
		}
		s2.Run(end)
		if got := pingSigOf(s2, a2, b2); got != want {
			t.Fatalf("barrier %v: restored run diverged: %+v != %+v", barrier, got, want)
		}
	}
}

func TestSnapshotAccountingRejectsUnownedEvents(t *testing.T) {
	s, _, _ := buildPingModel(true)
	s.Run(500 * sim.Nanosecond)
	// A raw closure nobody owns: snapshot must refuse, not silently drop.
	s.Engine().Schedule(10*sim.Nanosecond, func(any) {}, nil)
	err := s.Engine().Snapshot(sim.NewEncoder())
	if err == nil || !strings.Contains(err.Error(), "accounting") {
		t.Fatalf("unowned event: err = %v, want accounting failure", err)
	}
}

func TestSnapshotUnregisteredPayload(t *testing.T) {
	type opaque struct{ x int }
	s, a, _ := buildPingModel(true)
	s.Run(100 * sim.Nanosecond)
	// An EventSet payload with no codec: tracked (accounting passes) but
	// unencodable — Snapshot must fail cleanly, naming the type.
	a.set.ScheduleAt(s.Now()+sim.Microsecond, sim.PrioLink, opaque{1})
	err := s.Engine().Snapshot(sim.NewEncoder())
	if err == nil || !strings.Contains(err.Error(), "opaque") {
		t.Fatalf("unregistered payload: err = %v, want codec failure naming the type", err)
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	s1, _, _ := buildPingModel(true)
	s1.Run(200 * sim.Nanosecond)
	enc := sim.NewEncoder()
	if err := s1.Engine().Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	// A model with an extra component cannot load this snapshot.
	s2 := sim.New()
	s2.Engine().EnableSnapshots()
	a := &pinger{name: "a", eng: s2.Engine(), rng: sim.NewRNG(1)}
	a.set = sim.NewEventSet(s2.Engine(), "a.set", a.fire)
	s2.Add(a)
	if err := s2.Engine().Restore(sim.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

func TestEventSetPassthroughWhenDisabled(t *testing.T) {
	e := sim.NewEngine()
	fired := 0
	set := sim.NewEventSet(e, "x", func(any) { fired++ })
	set.ScheduleAt(10, sim.PrioLink, nil)
	if set.PendingOwned() != 0 {
		t.Fatal("disabled set tracks events")
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestScheduleRestoredAtOutsideRestorePanics(t *testing.T) {
	e := sim.NewEngine()
	e.EnableSnapshots()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.ScheduleRestoredAt(0, sim.PrioLink, 0, "", func(any) {}, nil)
}
