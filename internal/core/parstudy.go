package core

import (
	"fmt"
	"time"

	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

// The parallel-simulation study exercises the poster's scalability claim:
// the same multi-node model is partitioned over 1..N ranks and the host
// wall-clock time per simulated event is measured. On a multi-core host the
// windows execute concurrently; on any host the study also verifies that
// partitioning leaves the event count unchanged (determinism is covered by
// internal/par's tests).

// latticeNode is a self-driving model node: it burns host CPU per event
// (standing in for component model code) and exchanges messages with its
// ring neighbor at every lookahead interval.
type latticeNode struct {
	name     string
	out      *sim.Port
	received uint64
	sink     float64
}

func (l *latticeNode) Name() string { return l.name }

func (l *latticeNode) recv(payload any) {
	l.received++
}

// BuildLattice partitions `nodes` ring-connected nodes over the runner and
// starts their event chains: each node processes one compute event per
// eventSpacing and one neighbor message per linkLatency.
func BuildLattice(r *par.Runner, nodes int, eventSpacing, linkLatency sim.Time) ([]*latticeNode, error) {
	nranks := r.NumRanks()
	type half struct{ a, b *sim.Port }
	halves := make([]half, nodes)
	for i := 0; i < nodes; i++ {
		ra := i % nranks
		rb := ((i + 1) % nodes) % nranks
		a, b, err := r.Connect(fmt.Sprintf("lat%d", i), linkLatency, ra, rb)
		if err != nil {
			return nil, err
		}
		halves[i] = half{a, b}
	}
	out := make([]*latticeNode, nodes)
	for i := 0; i < nodes; i++ {
		n := &latticeNode{name: fmt.Sprintf("node%d", i), out: halves[i].a}
		halves[(i-1+nodes)%nodes].b.SetHandler(n.recv)
		rk := r.Rank(i % nranks)
		rk.Add(n)
		eng := rk.Engine()
		node := n
		var work sim.Handler
		sends := sim.Time(0)
		work = func(any) {
			for k := 0; k < 60; k++ {
				node.sink += float64(k) * 1.0000001
			}
			sends += eventSpacing
			if sends >= linkLatency {
				sends = 0
				node.out.Send(node.received)
			}
			eng.Schedule(eventSpacing, work, nil)
		}
		eng.Schedule(sim.Time(i%7), work, nil)
	}
	return out, nil
}

// ParallelScalingResult is the parallel-scaling study's Result: the
// rendered table plus WallSeconds[ranks] = host wall time per rank count.
type ParallelScalingResult struct {
	TableResult
	WallSeconds map[int]float64
}

// ParallelScalingStudy runs the lattice at each rank count for the given
// simulated horizon, reporting host wall time, simulated events and
// events/second.
//
// Unlike the design-space sweeps this study stays sequential on purpose:
// each point measures host wall-clock and already spawns one goroutine per
// rank, so running points through the sweep worker pool would contend for
// cores and corrupt the very timings being reported. opts.Workers is
// therefore ignored; opts.Context is still consulted between points so a
// cancelled sweep stops promptly.
func ParallelScalingStudy(rankCounts []int, nodes int, horizon sim.Time, opts SweepOptions) (*ParallelScalingResult, error) {
	t := stats.NewTable(
		fmt.Sprintf("Parallel simulation scaling: %d-node model, %v horizon", nodes, horizon),
		"ranks", "events", "wall_ms", "events_per_sec", "speedup_vs_1rank")
	ctx := opts.context()
	wall := map[int]float64{}
	var base float64
	var baseEvents uint64
	for _, nr := range rankCounts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: parallel scaling study cancelled: %w", err)
		}
		r, err := par.NewRunner(nr)
		if err != nil {
			return nil, err
		}
		if _, err := BuildLattice(r, nodes, 2*sim.Nanosecond, 2*sim.Microsecond); err != nil {
			return nil, err
		}
		start := time.Now()
		events, err := r.Run(horizon)
		if err != nil {
			return nil, err
		}
		w := time.Since(start).Seconds()
		wall[nr] = w
		if nr == rankCounts[0] {
			base = w
			baseEvents = events
		}
		if events != baseEvents {
			return nil, fmt.Errorf("core: partitioning changed event count: %d vs %d", events, baseEvents)
		}
		t.AddRow(nr, events, w*1e3, float64(events)/w, base/w)
	}
	return &ParallelScalingResult{TableResult: TableResult{Tab: t}, WallSeconds: wall}, nil
}
