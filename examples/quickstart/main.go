// Quickstart: build and run a complete node simulation in ~40 lines.
//
// A machine is described by an Abstract Machine Model: a core, a cache
// hierarchy, a memory technology and a workload. This example simulates a
// 4-wide 2 GHz superscalar core with two cache levels over DDR3-1333
// running the HPCCG conjugate-gradient miniapp, then prints what the
// simulator measured.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sst/internal/config"
	"sst/internal/core"
)

func main() {
	machine := &config.MachineConfig{
		Name: "quickstart-node",
		Node: config.NodeSpec{
			Cores: 1,
			CPU: config.CPUSpec{
				Kind:  "superscalar",
				Freq:  "2GHz",
				Width: 4,
			},
			L1:  &config.CacheSpec{Size: "32KB", Assoc: 4, HitLat: 2, Prefetch: true},
			L2:  &config.CacheSpec{Size: "256KB", Assoc: 8, HitLat: 10, Prefetch: true, PrefetchDeg: 4},
			Mem: config.MemSpec{Preset: "ddr3-1333", Channels: 1},
		},
		Workload: config.WorkloadSpec{Kind: "hpccg", N: 12, Iters: 1},
	}

	node, err := core.BuildNode(machine)
	if err != nil {
		log.Fatal(err)
	}
	res, err := node.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %s: %.3f ms of machine time\n", res.Name, res.Seconds*1e3)
	fmt.Printf("  retired %d ops (%d flops) at IPC %.2f\n", res.Retired, res.Flops, res.IPC)
	fmt.Printf("  L1 hit rate %.3f, L2 hit rate %.3f\n", res.L1HitRate, res.L2HitRate)
	fmt.Printf("  DRAM: %.2f MB moved at %.2f GB/s, row-buffer hit rate %.3f\n",
		float64(res.MemBytes)/1e6, res.MemBandwidth/1e9, res.MemRowHitRate)
	fmt.Printf("  node: %.1f W average, $%.0f, %.1f mm² die\n",
		res.Budget.AvgPowerW(), res.Budget.TotalCostUSD(), res.AreaMM2)

	// Every component statistic is also available by name:
	fmt.Printf("  dram row hits: %d\n", node.Reg.Counter("dram.row_hits").Count())
}
