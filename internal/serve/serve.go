// Package serve is the sweep service behind cmd/sst-serve: a daemon that
// accepts sweep jobs (core.JobSpec as data), runs them on a bounded
// worker pool with per-tenant fair queuing, and survives everything the
// ISSUE's failure menu can throw at it — panicking points (retried, then
// quarantined), wedged points (cut by PointTimeout, retried once at a
// stretched deadline), full queues (shed with 429), SIGTERM (graceful
// drain: stop admitting, finish and journal in-flight points, exit 0)
// and kill -9 (restart scans the state directory and resumes incomplete
// jobs off their journals, losing at most the points in flight).
//
// The durability scheme is the sweep journal plus two markers per job:
//
//	jobs/<id>/spec.json      written before admission — the job exists
//	jobs/<id>/journal.jsonl  fsync'd per completed point (internal/core)
//	jobs/<id>/result.csv     the rendered grid, written at completion
//	jobs/<id>/status.json    written only at a terminal state
//
// A job directory with spec.json and no status.json is, by construction,
// an incomplete job: queued, running or interrupted when the process
// died. Recovery re-queues exactly those, and the resume path re-runs
// only points absent from the journal, so the final result.csv is
// byte-identical to an uninterrupted run.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sst/internal/cache"
	"sst/internal/core"
	"sst/internal/fault"
	"sst/internal/iofault"
	"sst/internal/obs"
	"sst/internal/sim"
)

// Config parameterizes a Server. The zero value of each field resolves
// to a sane default in New.
type Config struct {
	// StateDir is the root of the durable state (required).
	StateDir string
	// JobWorkers is how many jobs run concurrently (default 2).
	JobWorkers int
	// PointWorkers is each job's sweep worker count (default GOMAXPROCS).
	PointWorkers int
	// QueueCapacity bounds the admission queue across all tenants
	// (default 16); a full queue sheds submissions with 429.
	QueueCapacity int
	// PointTimeout bounds each design point's wall clock (0 = none).
	PointTimeout time.Duration
	// Retry is the per-point retry policy applied to every job; each
	// job's backoff streams are re-seeded from (Retry.Seed, job ID) so
	// schedules are deterministic per job and stable across restarts.
	Retry core.RetryPolicy
	// Cache, when non-nil, is shared by all jobs: overlapping grids
	// re-simulate only what is new. The caller owns its lifecycle.
	Cache *cache.Cache
	// FS, when non-nil, is the host-storage seam all durable job state —
	// spec.json, journal, result.csv, status.json — goes through; nil
	// means the real filesystem (iofault.Disk). The crash-point harness
	// substitutes an iofault.MemFS to crash a whole job lifecycle at
	// every individual write, fsync and rename.
	FS iofault.FS
}

// ErrDraining rejects submissions while the server is shutting down.
var ErrDraining = errors.New("serve: draining, not admitting jobs")

// ErrQueueFull is the admission-control rejection; HTTP maps it to 429.
var ErrQueueFull = errors.New("serve: queue full")

// ErrUnknownJob reports a job ID the server has no record of.
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrStorage marks a submission the server could not make durable: the
// job was NOT admitted, nothing will run, and HTTP maps it to 500. The
// admission contract is all-or-nothing — a 202 means spec.json is on
// disk and fsync'd; a storage failure means no trace of the job remains.
var ErrStorage = errors.New("serve: storage failure")

// runSpec is the job execution seam: tests substitute controllable fakes
// (blocking jobs, instant jobs) without simulating anything.
var runSpec = func(spec core.JobSpec, opts core.SweepOptions) (core.Result, error) {
	return spec.Run(opts)
}

// Server is the sweep service: admission queue, worker pool, durable
// job state, and the metrics roll-up.
type Server struct {
	cfg   Config
	fs    iofault.FS
	start time.Time

	// baseCtx parents every job's sweep context; drain cancels it, which
	// also covers the race with a job that is just starting.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wake chan struct{} // pokes an idle worker after a push
	wg   sync.WaitGroup

	// arenas is shared by every job's sweep workers: consecutive points —
	// and consecutive jobs — reuse the same simulation arenas, which is
	// what keeps a resident server's allocation rate flat no matter how
	// many jobs it serves (asserted by TestServerSoak).
	arenas *core.ArenaPool

	mu       sync.Mutex
	queue    *tenantQueue
	jobs     map[string]*job
	order    []string // submission order, for listing
	draining bool
	running  int

	// Counters for the ServiceReport.
	shed, jobsDone, jobsFailed, jobsCancelled, jobsInterrupted, jobsRecovered int64
	pointsDone, pointsFailed, retries, quarantined                            int64
}

// New builds a Server over cfg.StateDir, creating the directory tree and
// recovering any incomplete jobs a previous process left behind. Call
// Start to begin executing jobs.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 16
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = iofault.Disk
	}
	if err := fsys.MkdirAll(filepath.Join(cfg.StateDir, "jobs")); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	// Make the state tree itself durable: the jobs/ entry needs the state
	// dir fsync'd, and the state dir's own entry needs its parent fsync'd.
	for _, d := range []string{cfg.StateDir, filepath.Dir(cfg.StateDir)} {
		if err := fsys.SyncDir(d); err != nil {
			return nil, fmt.Errorf("serve: state dir fsync: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg, fs: fsys, start: time.Now(),
		baseCtx: ctx, baseCancel: cancel,
		wake:   make(chan struct{}, 1),
		queue:  newTenantQueue(cfg.QueueCapacity),
		jobs:   make(map[string]*job),
		arenas: core.NewArenaPool(),
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// recover scans the state directory: terminal jobs are loaded so their
// status stays queryable, incomplete ones (spec.json without
// status.json) are re-queued with Resume semantics. Runs before the
// worker pool starts, so no locking subtleties.
func (s *Server) recover() error {
	entries, err := s.fs.ReadDir(filepath.Join(s.cfg.StateDir, "jobs"))
	if err != nil {
		return fmt.Errorf("serve: recovery scan: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids) // job IDs are time-sortable: re-queue in submission order
	for _, id := range ids {
		dir := filepath.Join(s.cfg.StateDir, "jobs", id)
		raw, err := s.fs.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // admission never finished; nothing durable was promised
		}
		var sf jobSpecFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			return fmt.Errorf("serve: recovery: %s/spec.json: %w", id, err)
		}
		j := &job{
			id: sf.ID, tenant: sf.Tenant, spec: sf.Spec,
			deadline: time.Duration(sf.DeadlineMS) * time.Millisecond,
			dir:      dir, points: sf.Spec.Points(),
			done: make(chan struct{}),
		}
		if st, err := readStatus(s.fs, j.statusPath()); err == nil && terminal(st.State) {
			// Finished in a previous life: load for queryability only.
			j.state = st.State
			j.errText = st.Err
			j.pointsDone, j.pointsFailed = st.PointsDone, st.PointsFailed
			j.retries, j.quarantined = st.Retries, st.Quarantined
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			continue
		}
		j.state = StateQueued
		j.recovered = true
		s.jobsRecovered++
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queue.push(j)
	}
	return nil
}

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	for w := 0; w < s.cfg.JobWorkers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
	s.poke()
}

// Submit validates, persists and enqueues a job. The spec.json write
// happens before the queue push: once the caller sees an ID, a crash
// cannot lose the job. deadline <= 0 means no job-level deadline.
func (s *Server) Submit(tenant string, spec core.JobSpec, deadline time.Duration) (JobStatus, error) {
	if tenant == "" {
		tenant = "default"
	}
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	j := &job{
		id: newJobID(), tenant: tenant, spec: spec,
		deadline: max(deadline, 0),
		state:    StateQueued, points: spec.Points(),
		done: make(chan struct{}),
	}
	j.dir = filepath.Join(s.cfg.StateDir, "jobs", j.id)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if s.queue.full() {
		s.shed++
		s.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	s.mu.Unlock()

	// Persist outside the lock — it is several fsyncs — then re-check
	// admission: the queue may have filled (or the drain begun) while we
	// wrote. The chain is: job dir created; spec.json atomically in place
	// (file fsync'd, job dir fsync'd by the atomic writer); jobs/ fsync'd
	// so the job dir's own entry is durable. Only then is a 202 honest.
	// Any failure along it un-admits the job completely (wrapping
	// ErrStorage, which HTTP maps to 500) and removes the debris.
	if err := s.persistJob(j); err != nil {
		s.fs.RemoveAll(j.dir)
		return JobStatus{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.fs.RemoveAll(j.dir)
		return JobStatus{}, ErrDraining
	}
	if !s.queue.push(j) {
		s.shed++
		s.fs.RemoveAll(j.dir)
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.poke()
	return j.status(), nil
}

// persistJob runs Submit's durability chain for j.
func (s *Server) persistJob(j *job) error {
	if err := s.fs.MkdirAll(j.dir); err != nil {
		return fmt.Errorf("serve: job dir: %w: %w", ErrStorage, err)
	}
	if err := j.persistSpec(s.fs); err != nil {
		return fmt.Errorf("serve: persisting spec: %w: %w", ErrStorage, err)
	}
	if err := s.fs.SyncDir(filepath.Dir(j.dir)); err != nil {
		return fmt.Errorf("serve: jobs dir fsync: %w: %w", ErrStorage, err)
	}
	return nil
}

// Status returns a job's current snapshot.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel cancels a job: a queued one leaves the queue and is terminal
// immediately; a running one has its sweep context cancelled and drains
// (running points finish and are journaled) before going terminal.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		s.queue.remove(id)
		j.cancelled = true
		s.finishLocked(j, StateCancelled, "cancelled while queued")
		return nil
	case StateRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
		return nil
	default:
		return fmt.Errorf("serve: job %s already %s", id, j.state)
	}
}

// Wait blocks until the job leaves the queued/running states or ctx
// expires. Tests and the smoke harness poll GET instead; Wait is the
// in-process equivalent.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: admission stops, the base
// context cancels (in-flight sweeps finish their running points and
// journal them; queued jobs stay durably queued for the next process),
// and the worker pool is awaited up to budget. Exceeding the budget
// returns an error wrapping sim.ErrInterrupted, which the CLI maps to
// exit 130 — the supervisor's signal for "killed before finishing".
func (s *Server) Drain(budget time.Duration) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if budget <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(budget):
		return fmt.Errorf("serve: drain budget %v exceeded: %w", budget, sim.ErrInterrupted)
	}
}

// poke wakes one idle worker; the token cascades (each worker that pops
// a job re-pokes) so a burst of pushes reaches every idle worker.
func (s *Server) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// workerLoop pops jobs until the server drains.
func (s *Server) workerLoop() {
	for {
		s.mu.Lock()
		j := s.queue.pop()
		if j != nil {
			j.state = StateRunning
			s.running++
		}
		s.mu.Unlock()
		if j == nil {
			select {
			case <-s.wake:
				continue
			case <-s.baseCtx.Done():
				return
			}
		}
		s.poke() // cascade: more queued jobs may fit other idle workers
		s.runJob(j)
		select {
		case <-s.baseCtx.Done():
			return
		default:
		}
	}
}

// runJob executes one job end to end: sweep with journal+resume, retry
// and the shared cache; result.csv on (possibly partial) completion; a
// terminal status.json unless the job was interrupted by a drain.
func (s *Server) runJob(j *job) {
	jctx, cancel := context.WithCancel(s.baseCtx)
	if j.deadline > 0 {
		jctx, cancel = context.WithTimeout(s.baseCtx, j.deadline)
	}
	defer cancel()
	s.mu.Lock()
	j.cancel = cancel
	s.mu.Unlock()

	pol := s.cfg.Retry
	if pol.MaxAttempts > 1 || pol.RetryTimeouts {
		// Stable per-job seed: the same job resumes with the same backoff
		// schedule after a restart, keeping its journal byte-deterministic.
		pol.Seed = fault.StreamSeed(pol.Seed, "job/"+j.id)
	}
	s.mu.Lock()
	if j.metrics == nil {
		j.metrics = &obs.SweepCollector{Cap: jobReportCap}
	}
	s.mu.Unlock()
	res, err := runSpec(j.spec, core.SweepOptions{
		Workers: s.cfg.PointWorkers, Context: jctx,
		Journal: j.journalPath(), Resume: true,
		PointTimeout: s.cfg.PointTimeout,
		Cache:        s.cfg.Cache,
		Retry:        pol,
		Metrics:      &jobMetrics{s: s, j: j},
		Arena:        s.arenas,
		FS:           s.fs,
	})
	if res != nil {
		if werr := writeResultCSV(s.fs, j.resultPath(), res); werr != nil && err == nil {
			err = werr
		}
	}

	// Classify the outcome off the job context, not the sweep error: a
	// point-level timeout also smells like DeadlineExceeded, but only the
	// job context expiring means the job deadline fired.
	state, errText := StateDone, ""
	switch {
	case errors.Is(jctx.Err(), context.DeadlineExceeded):
		state, errText = StateFailed, fmt.Sprintf("job deadline %v exceeded", j.deadline)
	case jctx.Err() != nil && j.cancelled:
		state, errText = StateCancelled, "cancelled"
	case jctx.Err() != nil:
		// The drain cancelled the base context: in-flight points are
		// journaled, the job itself is not terminal and will resume.
		state, errText = StateInterrupted, "interrupted by shutdown"
	case err != nil:
		state, errText = StateFailed, err.Error()
	}
	s.mu.Lock()
	s.running--
	s.finishLocked(j, state, errText)
	s.mu.Unlock()
}

// finishLocked moves j to a finished state, persists status.json for
// terminal states and bumps the server counters. Caller holds s.mu.
func (s *Server) finishLocked(j *job, state, errText string) {
	j.state = state
	j.errText = errText
	switch state {
	case StateDone:
		s.jobsDone++
	case StateFailed:
		s.jobsFailed++
	case StateCancelled:
		s.jobsCancelled++
	case StateInterrupted:
		s.jobsInterrupted++
	}
	if terminal(state) {
		if err := j.persistStatus(s.fs, j.status()); err != nil && j.errText == "" {
			j.state = StateFailed
			j.errText = fmt.Sprintf("persisting status: %v", err)
		}
	}
	close(j.done)
}

// Report snapshots the service metrics as a core.Result-shaped report.
func (s *Server) Report() *obs.ServiceReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &obs.ServiceReport{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining,
		QueueDepth:    s.queue.len(),
		QueueCapacity: s.cfg.QueueCapacity,
		Shed:          s.shed,
		Tenants:       s.queue.tenants(),
		JobsQueued:    s.queue.len(),
		JobsRunning:   s.running,
		JobsDone:      s.jobsDone, JobsFailed: s.jobsFailed,
		JobsCancelled: s.jobsCancelled, JobsInterrupted: s.jobsInterrupted,
		JobsRecovered: s.jobsRecovered,
		PointsDone:    s.pointsDone, PointsFailed: s.pointsFailed,
		Retries: s.retries, Quarantined: s.quarantined,
	}
	for _, j := range s.jobs {
		if j.metrics != nil {
			r.ReportsDropped += int64(j.metrics.Dropped())
		}
	}
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		r.Cache = &cs
	}
	return r
}

// jobReportCap bounds each job's retained per-point reports: a resident
// server must not hold one report per point for jobs of arbitrary size,
// so only the most recent reports survive and evictions are counted
// (surfaced as reports_dropped in /v1/metrics).
const jobReportCap = 1024

// jobMetrics folds per-point reports into the job's and the server's
// counters, and retains the report itself in the job's capped ring.
// PointDone is called from sweep worker goroutines.
type jobMetrics struct {
	s *Server
	j *job
}

func (m *jobMetrics) PointDone(r core.PointReport) {
	// The ring has its own lock; push outside s.mu to keep ordering flat.
	m.j.metrics.PointDone(r)
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	if r.Attempts > 1 {
		m.j.retries += r.Attempts - 1
		m.s.retries += int64(r.Attempts - 1)
	}
	switch {
	case r.Err == nil:
		m.j.pointsDone++
		m.s.pointsDone++
	case r.Attempts == 0:
		// Skipped by cancellation: never ran, neither done nor failed.
	default:
		m.j.pointsFailed++
		m.s.pointsFailed++
		if errors.Is(r.Err, core.ErrQuarantined) {
			m.j.quarantined++
			m.s.quarantined++
		}
	}
}

// writeResultCSV renders res durably at path: temp file, fsync, rename,
// parent-dir fsync — the shared atomic-replace discipline, so a crash at
// any instant leaves either no result.csv or a complete one.
func writeResultCSV(fsys iofault.FS, path string, res core.Result) error {
	return iofault.WriteFileAtomicFunc(fsys, path, func(w io.Writer) error {
		return core.WriteResults(w, core.FormatCSV, res)
	})
}
