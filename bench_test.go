// Package sst's top-level benchmark harness regenerates every experiment
// table/figure of the reproduced SST studies. Each benchmark runs the full
// study and prints the corresponding table once; `go test -bench=.` is the
// repository's "reproduce the paper" entry point.
//
// Experiment index (see DESIGN.md for sources and EXPERIMENTS.md for
// paper-vs-measured):
//
//	BenchmarkFig10MemTech       E1: app performance vs memory technology
//	BenchmarkFig11PowerCost     E2: power & cost efficiency vs technology
//	BenchmarkFig12IssueWidth    E3: efficiency vs issue width
//	BenchmarkFig9NetDegradation E4: injection-bandwidth degradation
//	BenchmarkFig13PIM           E5: PIM vs conventional (novel architecture)
//	BenchmarkFig14ParallelSpeedup E6: parallel simulator scaling
//	BenchmarkFig3MemSpeed       E7: memory-speed phase sensitivity
package sst_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"sst/internal/cache"
	"sst/internal/core"
	"sst/internal/dnoc"
	"sst/internal/noc"
	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

var (
	sweepApps   = []string{"hpccg", "lulesh"}
	sweepTechs  = []string{"ddr2-800", "ddr3-1333", "gddr5-4000"}
	sweepWidths = []int{1, 2, 4, 8}
)

// printOnce renders each distinct table a single time, however many
// benchmark iterations run.
var printedTables sync.Map

func printOnce(t *stats.Table) {
	if _, loaded := printedTables.LoadOrStore(t.Title, true); loaded {
		return
	}
	fmt.Fprintln(os.Stdout)
	t.Render(os.Stdout)
}

// BenchmarkSweepWorkers measures the concurrent sweep scheduler on the
// warm-arena path: the same Small-scale Fig. 10/11/12 sweep at 1, 2, 4 and
// 8 workers, every worker drawing its point storage from a shared
// ArenaPool warmed by one untimed sweep. The design points are independent
// simulations, so up to the host's core count the wall-clock ratio to the
// 1-worker run approaches the worker count (oversubscribed counts just
// measure scheduler overhead); the grids themselves are identical at any
// worker count and with or without arenas (asserted by
// TestConcurrentSweepDeterminism and TestSweepArenaDeterminism in
// internal/core). bytes/op and allocs/op here are hard-gated by
// tools/benchcheck -max-bytes/-max-allocs — this is the resident sweep
// service's steady state, and it must stay flat.
func BenchmarkSweepWorkers(b *testing.B) {
	arenas := core.NewArenaPool()
	for _, workers := range []int{1, 2, 4, 8} {
		opts := core.SweepOptions{Workers: workers, Arena: arenas}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Warm the pool: the first sweep pays the arena build cost so
			// the timed iterations measure steady-state reuse.
			if _, err := core.MemTechWidthSweep(sweepApps, sweepTechs, sweepWidths, core.Small, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.MemTechWidthSweep(sweepApps, sweepTechs, sweepWidths, core.Small, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepCacheHit measures the all-hit path: the same sweep served
// entirely from a warm result cache. The perf gate pins this orders of
// magnitude below the workers=1 cold sweep — a hit is a hash, a map probe
// and a struct copy, not a simulation.
func BenchmarkSweepCacheHit(b *testing.B) {
	c, err := core.NewSweepCache(256, cache.LRU, nil, "")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	opts := core.SweepOptions{Workers: 1, Cache: c}
	if _, err := core.MemTechWidthSweep(sweepApps, sweepTechs, sweepWidths, core.Small, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MemTechWidthSweep(sweepApps, sweepTechs, sweepWidths, core.Small, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCacheMiss measures the all-miss path: a fresh cache every
// iteration, so each point simulates and then pays the key hash, encode
// and insert. The gate keeps the overhead over the uncached sweep small.
func BenchmarkSweepCacheMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := core.NewSweepCache(256, cache.LRU, nil, "")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, err = core.MemTechWidthSweep(sweepApps, sweepTechs, sweepWidths, core.Small,
			core.SweepOptions{Workers: 1, Cache: c})
		b.StopTimer()
		c.Close()
		b.StartTimer()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// fullSweep runs the shared Fig. 10/11/12 design-space sweep.
func fullSweep(b *testing.B) *core.DSEGrid {
	b.Helper()
	grid, err := core.MemTechWidthSweep(sweepApps, sweepTechs, sweepWidths, core.Full, core.SweepOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return grid
}

// BenchmarkFig10MemTech regenerates Fig. 10: application performance with
// DDR2/DDR3/GDDR5 across issue widths. Expected shape: GDDR5 26-47% faster
// than DDR3 on Lulesh and 32-41% on HPCCG; DDR2 slowest everywhere.
func BenchmarkFig10MemTech(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid := fullSweep(b)
		tab := core.Fig10Table(grid, sweepApps, sweepTechs, sweepWidths, "ddr3-1333")
		printOnce(tab)
		verifyFig10(b, grid)
	}
}

func verifyFig10(b *testing.B, grid *core.DSEGrid) {
	b.Helper()
	for _, app := range sweepApps {
		for _, w := range sweepWidths {
			ddr2 := grid.Find(app, "ddr2-800", w).Result.Seconds
			ddr3 := grid.Find(app, "ddr3-1333", w).Result.Seconds
			gddr5 := grid.Find(app, "gddr5-4000", w).Result.Seconds
			if !(gddr5 < ddr3 && ddr3 < ddr2) {
				b.Errorf("Fig10 %s w%d ordering broken: ddr2=%.4g ddr3=%.4g gddr5=%.4g",
					app, w, ddr2, ddr3, gddr5)
			}
		}
	}
}

// BenchmarkFig11PowerCost regenerates Fig. 11: power and cost with
// different memory systems. Expected shape: DDR3's perf/W beats or matches
// GDDR5, with the largest advantage at narrow widths; perf/$ crosses over
// (DDR3 wins narrow, GDDR5 competitive at 8-wide).
func BenchmarkFig11PowerCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid := fullSweep(b)
		tab := core.Fig11Table(grid, sweepApps, sweepTechs, sweepWidths)
		printOnce(tab)
		// Shape check: DDR3 perf/W >= GDDR5 perf/W at width 1.
		for _, app := range sweepApps {
			d := grid.Find(app, "ddr3-1333", 1).Result.PerfPerWatt()
			g := grid.Find(app, "gddr5-4000", 1).Result.PerfPerWatt()
			if d <= g {
				b.Errorf("Fig11 %s: DDR3 perf/W %.4g should beat GDDR5 %.4g at width 1", app, d, g)
			}
		}
	}
}

// BenchmarkFig12IssueWidth regenerates Fig. 12: cost and power efficiency
// for different processor issue widths. The width sweep runs on GDDR5 so
// the memory system does not wall off the width effect (on DDR3 the wide
// cores are bandwidth-bound and barely separate). Expected shape: wider is
// faster sublinearly (paper: +78% at 8-wide) but superlinearly hungrier
// (paper: +123% power); 1-2 wide cores win perf/W and 2-4 wide win perf/$.
func BenchmarkFig12IssueWidth(b *testing.B) {
	const tech = "gddr5-4000"
	for i := 0; i < b.N; i++ {
		grid, err := core.MemTechWidthSweep(sweepApps, []string{tech}, sweepWidths, core.Full, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		tab := core.Fig12Table(grid, sweepApps, tech, sweepWidths)
		printOnce(tab)
		for _, app := range sweepApps {
			r1 := grid.Find(app, tech, 1).Result
			r8 := grid.Find(app, tech, 8).Result
			if r8.Seconds >= r1.Seconds {
				b.Errorf("Fig12 %s: 8-wide not faster than 1-wide", app)
			}
			if r8.Budget.AvgPowerW() <= r1.Budget.AvgPowerW() {
				b.Errorf("Fig12 %s: 8-wide not hungrier than 1-wide", app)
			}
			if r8.PerfPerWatt() >= r1.PerfPerWatt() {
				b.Errorf("Fig12 %s: power efficiency should favor narrow cores", app)
			}
		}
	}
}

// BenchmarkFig9NetDegradation regenerates Fig. 9: application slowdown at
// 1, 1/2, 1/4 and 1/8 network injection bandwidth on a torus. Expected
// shape: CTH/SAGE-like large-message apps slow >2x at 1/8 bandwidth;
// Charon-like small-message apps are essentially flat.
func BenchmarkFig9NetDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultNetStudy()
		deg, err := core.NetDegradationStudy(cfg, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(deg.Table())
		slow := deg.Slowdown
		last := len(cfg.Fractions) - 1
		if s := slow["cth"][last]; s < 2 {
			b.Errorf("Fig9: CTH slowdown at 1/8 bw = %.2f, want > 2", s)
		}
		if s := slow["charon"][last]; s > 1.1 {
			b.Errorf("Fig9: Charon slowdown at 1/8 bw = %.2f, want ~1", s)
		}
		// The power conclusion the paper draws from Fig. 9.
		pow, err := core.NetPowerStudy(cfg, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(pow.Table())
		best := pow.Best
		if best["charon"] == 0 {
			b.Error("Fig9 power: Charon should save energy on a slower network")
		}
		if best["cth"] == last {
			b.Error("Fig9 power: CTH should not prefer the slowest network")
		}
	}
}

// BenchmarkFig13PIM runs the novel-architecture study the SC'06 poster
// headlines: a PIM-style multithreaded near-memory node vs a conventional
// cache-based node. Expected shape: PIM wins on irregular low-locality
// GUPS, loses on cache-friendly FEA.
func BenchmarkFig13PIM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.PIMStudy([]string{"gups", "stream", "fea"}, core.Full, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(res.Table())
		for _, r := range res.Results {
			switch r.App {
			case "gups":
				if r.PIMSpeedup() < 1.2 {
					b.Errorf("PIM should win GUPS: speedup %.2f", r.PIMSpeedup())
				}
			case "fea":
				if r.PIMSpeedup() > 1 {
					b.Errorf("PIM should lose FEA: speedup %.2f", r.PIMSpeedup())
				}
			}
		}
	}
}

// BenchmarkFig14ParallelSpeedup runs the parallel-simulator scaling study:
// one heterogeneous-latency model partitioned over 1..8 ranks under both
// sync modes. On a multi-core host the wall time drops with ranks; on a
// single-core host (like this repository's CI sandbox) the study instead
// bounds synchronization overhead and demonstrates the topology-aware win:
// pairwise lookahead dispatches strictly fewer windows than a global
// window once the slow-link periphery spans its own ranks. Determinism and
// sequential-equivalence are asserted in internal/par's tests.
func BenchmarkFig14ParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.ParallelScalingStudy([]int{1, 2, 4, 8}, 16, 2*sim.Millisecond, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(res.Table())
		wall := res.WallSeconds
		// Overhead bound: the 8-rank run must stay within 2x of the
		// 1-rank run even on a single-core host.
		if wall[8] > 2*wall[1] {
			b.Errorf("parallel overhead too high: 8 ranks %.3fs vs 1 rank %.3fs", wall[8], wall[1])
		}
		// The topology-aware dispatch-count win is deterministic, unlike
		// wall time: at 8 ranks the periphery's inbound lookahead is the
		// slow link, not the chatty pair's tight one.
		if res.Windows[8] >= res.WindowsGlobal[8] {
			b.Errorf("pairwise sync dispatched %d windows vs global %d at 8 ranks",
				res.Windows[8], res.WindowsGlobal[8])
		}
	}
}

// BenchmarkFig3MemSpeed regenerates the memory-speed sensitivity study:
// DDR3-800 vs DDR3-1066 vs DDR3-1333 on the FEA-like and solver phases.
// Expected shape: the solver slows as memory slows; FEA is flat.
func BenchmarkFig3MemSpeed(b *testing.B) {
	grades := []string{"ddr3-800", "ddr3-1066", "ddr3-1333"}
	for i := 0; i < b.N; i++ {
		res, err := core.MemSpeedStudy(grades, core.Full, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(res.Table())
		rel := res.Rel
		if rel["hpccg"]["ddr3-800"] < 1.1 {
			b.Errorf("Fig3: solver insensitive to memory speed: %.3f", rel["hpccg"]["ddr3-800"])
		}
		if rel["fea"]["ddr3-800"] > 1.05 {
			b.Errorf("Fig3: FEA sensitive to memory speed: %.3f", rel["fea"]["ddr3-800"])
		}
	}
}

// BenchmarkFig2CoreScaling regenerates the cores-per-node study: fixed
// total work split over 1-8 cores sharing one memory system. Expected
// shape: the bandwidth-bound solver's parallel efficiency decays with core
// count while the compute-bound FEA phase scales nearly ideally.
func BenchmarkFig2CoreScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.CoreScalingStudy([]string{"fea", "hpccg"}, []int{1, 2, 4, 8}, core.Full, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(res.Table())
		eff := res.Efficiency
		if eff["fea"][8] < 0.7 {
			b.Errorf("Fig2: FEA efficiency at 8 cores = %.2f, want near-ideal", eff["fea"][8])
		}
		if eff["hpccg"][8] > eff["fea"][8]*0.9 {
			b.Errorf("Fig2: solver efficiency (%.2f) should fall well below FEA (%.2f)",
				eff["hpccg"][8], eff["fea"][8])
		}
	}
}

// BenchmarkFig4CacheRates regenerates the cache-behavior comparison:
// the FEA phase is L1-resident; the solver streams with weak outer-level
// locality.
func BenchmarkFig4CacheRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := core.CacheStudy(core.Full, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(cs.Table())
		res := cs.Results
		if res["fea"].L1HitRate < 0.99 {
			b.Errorf("Fig4: FEA L1 hit rate = %.3f, want ~1", res["fea"].L1HitRate)
		}
		if res["fea"].MemBytes > res["hpccg"].MemBytes/10 {
			b.Errorf("Fig4: FEA DRAM traffic (%d B) should be tiny next to the solver's (%d B)",
				res["fea"].MemBytes, res["hpccg"].MemBytes)
		}
	}
}

// BenchmarkFig15DistNetwork runs the distributed-network study: the same
// 64-node torus traffic simulated over 1-8 parallel ranks. Per-message
// delivery times are independent of the partitioning (asserted exactly in
// internal/dnoc's tests); here the study reports wall time per rank count
// and asserts the message count is invariant.
func BenchmarkFig15DistNetwork(b *testing.B) {
	topo, err := noc.NewTorus3D(8, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := noc.DefaultConfig()
	for i := 0; i < b.N; i++ {
		tab := stats.NewTable("Distributed network simulation: 64-node torus over parallel ranks",
			"ranks", "messages", "wall_ms")
		var want uint64
		for _, nranks := range []int{1, 2, 4, 8} {
			runner, err := par.NewRunner(nranks)
			if err != nil {
				b.Fatal(err)
			}
			d, err := dnoc.New(runner, topo, cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			for n := 0; n < topo.NumNodes(); n++ {
				d.NIC(n).SetReceiver(func(int, int, any) {})
			}
			for n := 0; n < topo.NumNodes(); n++ {
				node := n
				eng := runner.Rank(d.RankOfNode(n)).Engine()
				for m := 0; m < 24; m++ {
					mm := m
					eng.ScheduleAt(sim.Time(node*977+mm*31000)*sim.Nanosecond, sim.PrioLink, func(any) {
						d.NIC(node).Send((node*13+5)%topo.NumNodes(), 4096+node, nil, nil)
					}, nil)
				}
			}
			start := time.Now()
			if _, err := runner.RunAll(); err != nil {
				b.Fatal(err)
			}
			wall := time.Since(start)
			if want == 0 {
				want = d.Messages()
			}
			if d.Messages() != want {
				b.Fatalf("rank count changed message count: %d vs %d", d.Messages(), want)
			}
			tab.AddRow(nranks, d.Messages(), float64(wall.Microseconds())/1e3)
		}
		printOnce(tab)
	}
}

// BenchmarkFig5SolverScaling regenerates the weak-scaling comparison of
// solver communication patterns: the unpreconditioned CG iteration (two
// reductions) against a multilevel-preconditioned iteration that sends
// ~40% more messages per rank. Expected shape: both lose weak-scaling
// efficiency as rank count grows (the all-reduce log(P) term), and the
// ML variant falls off faster — the study's explanation for why miniFE
// tracked ILU-preconditioned Charon but not ML.
func BenchmarkFig5SolverScaling(b *testing.B) {
	ranks := []int{4, 8, 16, 32, 64}
	for i := 0; i < b.N; i++ {
		res, err := core.WeakScalingStudy(ranks, 4, core.SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(res.Table())
		eff := res.Efficiency
		last := len(ranks) - 1
		if eff["cg"][last] >= 1 {
			b.Errorf("Fig5: CG efficiency at %d ranks = %.3f, want < 1", ranks[last], eff["cg"][last])
		}
		if eff["ml"][last] >= eff["cg"][last] {
			b.Errorf("Fig5: ML (%.3f) should scale worse than CG (%.3f)",
				eff["ml"][last], eff["cg"][last])
		}
		// Efficiency decays monotonically-ish with scale for both.
		for _, name := range []string{"cg", "ml"} {
			if eff[name][last] > eff[name][0] {
				b.Errorf("Fig5: %s efficiency rising with scale: %v", name, eff[name])
			}
		}
	}
}
