package noc

// PowerParams models interconnect power: per-byte link energy plus
// bandwidth-proportional static link power (SerDes lanes burn power in
// proportion to their provisioned rate, which is why reducing injection
// bandwidth saves power — the trade the degradation study is about).
type PowerParams struct {
	// LinkEnergyPerByteJ is dynamic energy per byte traversing one link.
	LinkEnergyPerByteJ float64
	// RouterEnergyPerByteJ is dynamic energy per byte switched.
	RouterEnergyPerByteJ float64
	// IdleWPerGBps is static power per link per GB/s of provisioned
	// bandwidth (both directions).
	IdleWPerGBps float64
	// NICIdleWPerGBps is static power per NIC per GB/s of injection
	// bandwidth.
	NICIdleWPerGBps float64
}

// DefaultPowerParams resembles a mid-2000s electrical interconnect
// (~1 nJ/byte end-to-end at several hops, watts per high-speed port).
func DefaultPowerParams() PowerParams {
	return PowerParams{
		LinkEnergyPerByteJ:   0.2e-9,
		RouterEnergyPerByteJ: 0.1e-9,
		IdleWPerGBps:         0.5,
		NICIdleWPerGBps:      0.5,
	}
}

// NetworkEnergy summarizes one run's interconnect energy.
type NetworkEnergy struct {
	DynamicJ float64
	StaticJ  float64
	// StaticW is the provisioned static power (independent of the run).
	StaticW float64
}

// TotalJ returns dynamic plus static energy.
func (e NetworkEnergy) TotalJ() float64 { return e.DynamicJ + e.StaticJ }

// Energy integrates a network's energy over the simulation so far: dynamic
// energy from per-link byte counts, static energy from provisioned
// bandwidth times elapsed time.
func (n *Network) Energy(p PowerParams) NetworkEnergy {
	var dynBytesHops uint64
	links := 0
	for _, m := range n.links {
		for _, l := range m {
			dynBytesHops += l.bytes
			links++
		}
	}
	dyn := float64(dynBytesHops) * (p.LinkEnergyPerByteJ + p.RouterEnergyPerByteJ)
	// Injection/ejection dynamic energy.
	dyn += float64(n.bytes.Count()) * p.LinkEnergyPerByteJ

	gbps := n.cfg.LinkBandwidth / 1e9
	injGbps := n.cfg.InjectionBandwidth / 1e9
	staticW := float64(links)/2*p.IdleWPerGBps*gbps +
		float64(len(n.nics))*p.NICIdleWPerGBps*injGbps
	elapsed := n.engine.Now().Seconds()
	return NetworkEnergy{
		DynamicJ: dyn,
		StaticJ:  staticW * elapsed,
		StaticW:  staticW,
	}
}

// LinkUtilization returns the mean busy fraction across directed links.
func (n *Network) LinkUtilization() float64 {
	now := n.engine.Now()
	if now == 0 {
		return 0
	}
	var busy uint64
	count := 0
	for _, m := range n.links {
		for _, l := range m {
			busy += l.busy
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(busy) / float64(count) / float64(now)
}

// HottestLinkUtilization returns the busiest directed link's busy fraction
// — the congestion indicator for topology studies.
func (n *Network) HottestLinkUtilization() float64 {
	now := n.engine.Now()
	if now == 0 {
		return 0
	}
	var max uint64
	for _, m := range n.links {
		for _, l := range m {
			if l.busy > max {
				max = l.busy
			}
		}
	}
	return float64(max) / float64(now)
}
