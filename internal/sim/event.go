package sim

// Handler consumes an event payload when its scheduled time arrives.
type Handler func(payload any)

// Priority orders events that share a timestamp. Lower values run first.
// The bands below keep common orderings readable at call sites; any int32
// is legal.
type Priority int32

const (
	// PrioClock is the default priority of clock ticks.
	PrioClock Priority = 0
	// PrioLink is the default priority of link deliveries; links deliver
	// after clock edges of the same timestamp, modelling registration at
	// the receiving clock boundary.
	PrioLink Priority = 100
	// PrioLate runs after all normal work at a timestamp (e.g. stat
	// sampling).
	PrioLate Priority = 1 << 20
)

// event is a scheduled handler invocation. Events are ordered by
// (time, priority, sequence); sequence is the global insertion counter, so
// ties are broken deterministically in schedule order. label carries the
// component/link attribution for the tracer; events scheduled from inside a
// handler inherit the running event's label unless one is given explicitly.
type event struct {
	time    Time
	prio    Priority
	seq     uint64
	fn      Handler
	payload any
	label   string
}

func (a *event) before(b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// eventQueue is a binary min-heap of events. It is hand-rolled rather than
// built on container/heap to avoid the interface-call overhead on the
// simulator's hottest path.
type eventQueue struct {
	a []*event
}

func (q *eventQueue) Len() int { return len(q.a) }

func (q *eventQueue) Push(e *event) {
	q.a = append(q.a, e)
	q.up(len(q.a) - 1)
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *eventQueue) Peek() *event {
	if len(q.a) == 0 {
		return nil
	}
	return q.a[0]
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *eventQueue) Pop() *event {
	n := len(q.a)
	if n == 0 {
		return nil
	}
	top := q.a[0]
	last := q.a[n-1]
	q.a[n-1] = nil
	q.a = q.a[:n-1]
	if n > 1 {
		q.a[0] = last
		q.down(0)
	}
	return top
}

func (q *eventQueue) up(i int) {
	e := q.a[i]
	for i > 0 {
		p := (i - 1) / 2
		if !e.before(q.a[p]) {
			break
		}
		q.a[i] = q.a[p]
		i = p
	}
	q.a[i] = e
}

func (q *eventQueue) down(i int) {
	e := q.a[i]
	n := len(q.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.a[r].before(q.a[l]) {
			c = r
		}
		if !q.a[c].before(e) {
			break
		}
		q.a[i] = q.a[c]
		i = c
	}
	q.a[i] = e
}
