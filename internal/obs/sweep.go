package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"sst/internal/core"
	"sst/internal/stats"
)

// DefaultPointReportCap bounds a SweepCollector whose Cap is zero: 16k
// point reports, plenty for any CLI-sized sweep, while keeping a
// collector attached to an unbounded stream of points (a resident
// service) from growing without limit.
const DefaultPointReportCap = 1 << 14

// SweepCollector implements core.SweepMetrics: it accumulates one
// PointReport per design point into a hard-capped ring (Cap reports;
// zero selects DefaultPointReportCap). When the ring fills, the oldest
// reports are dropped and counted in Dropped — the collector keeps the
// most recent points, and its tables say how many it let go rather than
// silently narrowing. It is safe for concurrent use — sweep workers call
// PointDone from their own goroutines — and one collector observes
// exactly one sweep (point indices would collide across sweeps).
type SweepCollector struct {
	// Cap is the maximum retained reports; zero means
	// DefaultPointReportCap. Set it before the first PointDone.
	Cap int

	mu      sync.Mutex
	points  []core.PointReport
	next    int // ring cursor once len(points) == cap
	dropped uint64
}

// PointDone implements core.SweepMetrics.
func (c *SweepCollector) PointDone(p core.PointReport) {
	c.mu.Lock()
	capacity := c.Cap
	if capacity <= 0 {
		capacity = DefaultPointReportCap
	}
	if len(c.points) < capacity {
		c.points = append(c.points, p)
	} else {
		c.points[c.next] = p
		c.next = (c.next + 1) % len(c.points)
		c.dropped++
	}
	c.mu.Unlock()
}

// Dropped returns how many point reports the ring cap discarded; the
// retained reports are the most recent ones.
func (c *SweepCollector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Points returns the collected reports sorted by point index.
func (c *SweepCollector) Points() []core.PointReport {
	c.mu.Lock()
	out := make([]core.PointReport, len(c.points))
	copy(out, c.points)
	c.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Table renders per-point host timings: index, worker, wall time, error.
// A capped collector says in the title how many reports it dropped.
func (c *SweepCollector) Table() *stats.Table {
	title := "Sweep metrics (per design point)"
	if d := c.Dropped(); d > 0 {
		title = fmt.Sprintf("Sweep metrics (per design point; %d oldest dropped by report cap)", d)
	}
	t := stats.NewTable(title,
		"point", "worker", "wall_ms", "err")
	for _, p := range c.Points() {
		msg := ""
		if p.Err != nil {
			msg = p.Err.Error()
			if j := strings.IndexByte(msg, '\n'); j >= 0 {
				msg = msg[:j]
			}
		}
		t.AddRow(p.Index, p.Worker, p.Wall.Seconds()*1e3, msg)
	}
	return t
}

// WriteJSON emits the per-point table as JSON.
func (c *SweepCollector) WriteJSON(w io.Writer) error { return c.Table().WriteJSON(w) }

// WriteCSV emits the per-point table as CSV.
func (c *SweepCollector) WriteCSV(w io.Writer) error { return c.Table().WriteCSV(w) }

// WriteChromeJSON emits the sweep as a host-timeline Chrome trace: one
// thread row per worker, one complete event per design point, timestamps
// relative to the earliest point start. It shows pool utilization and
// stragglers at a glance in Perfetto.
func (c *SweepCollector) WriteChromeJSON(w io.Writer) error {
	pts := c.Points()
	var epoch time.Time
	for _, p := range pts {
		if epoch.IsZero() || p.Start.Before(epoch) {
			epoch = p.Start
		}
	}
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[\n")
	workers := map[int]bool{}
	first := true
	emit := func(s string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(s)
	}
	for _, p := range pts {
		if !workers[p.Worker] {
			workers[p.Worker] = true
			emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":"worker %d"}}`,
				p.Worker+1, p.Worker))
		}
		name := fmt.Sprintf("point %d", p.Index)
		if p.Err != nil {
			name += " (failed)"
		}
		emit(fmt.Sprintf(`{"ph":"X","name":%q,"pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}`,
			name, p.Worker+1,
			float64(p.Start.Sub(epoch).Nanoseconds())/1e3,
			float64(p.Wall.Nanoseconds())/1e3))
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
