package noc

import (
	"testing"
	"testing/quick"

	"sst/internal/sim"
	"sst/internal/stats"
)

// allTopologies returns a representative instance of each topology kind.
func allTopologies(t *testing.T) []Topology {
	t.Helper()
	m, err := NewMesh2D(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTorus3D(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := NewTorus3D(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFatTree(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := NewCrossbar(8)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := NewButterfly(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Topology{m, t2, t3, ft, xb, hc, bf}
}

// TestRoutingTerminatesAndUsesLinks is the deadlock/livelock-freedom
// property: every (src,dst) route reaches the destination within
// diameter+1 hops, moving only along declared links.
func TestRoutingTerminatesAndUsesLinks(t *testing.T) {
	for _, topo := range allTopologies(t) {
		links := map[[2]int]bool{}
		for _, l := range topo.Links() {
			links[l] = true
			links[[2]int{l[1], l[0]}] = true
		}
		for src := 0; src < topo.NumNodes(); src++ {
			for dst := 0; dst < topo.NumNodes(); dst++ {
				r := topo.RouterOf(src)
				hops := 0
				for {
					nxt := topo.Route(r, dst)
					if nxt < 0 {
						if r != topo.RouterOf(dst) {
							t.Fatalf("%s: route %d->%d delivered at wrong router %d", topo.Name(), src, dst, r)
						}
						break
					}
					if !links[[2]int{r, nxt}] {
						t.Fatalf("%s: route %d->%d uses missing link %d->%d", topo.Name(), src, dst, r, nxt)
					}
					r = nxt
					hops++
					if hops > topo.Diameter()+1 {
						t.Fatalf("%s: route %d->%d exceeded diameter bound %d", topo.Name(), src, dst, topo.Diameter())
					}
				}
			}
		}
	}
}

func TestTorusShortestDirection(t *testing.T) {
	topo, _ := NewTorus3D(8, 1, 1)
	// From router 0 to node 7: wrapping backward (1 hop) beats forward
	// (7 hops).
	if nxt := topo.Route(0, 7); nxt != 7 {
		t.Fatalf("torus route 0->7 goes via %d, want wraparound to 7", nxt)
	}
	if nxt := topo.Route(0, 2); nxt != 1 {
		t.Fatalf("torus route 0->2 goes via %d, want 1", nxt)
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewMesh2D(0, 3); err == nil {
		t.Error("bad mesh accepted")
	}
	if _, err := NewTorus3D(2, 0, 2); err == nil {
		t.Error("bad torus accepted")
	}
	if _, err := NewFatTree(0, 1, 1); err == nil {
		t.Error("bad fat tree accepted")
	}
	if _, err := NewCrossbar(-1); err == nil {
		t.Error("bad crossbar accepted")
	}
	if err := (&NetConfig{}).Validate(); err == nil {
		t.Error("zero-bandwidth config accepted")
	}
	cfg := DefaultConfig()
	cfg.MaxPacketBytes = 8
	if err := cfg.Validate(); err == nil {
		t.Error("tiny packets accepted")
	}
}

func newNet(t testing.TB, topo Topology, cfg NetConfig) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	n, err := NewNetwork(e, "net", topo, cfg, reg.Scope("net"))
	if err != nil {
		t.Fatal(err)
	}
	return e, n
}

func TestPointToPointLatency(t *testing.T) {
	topo, _ := NewMesh2D(4, 1)
	cfg := DefaultConfig()
	e, n := newNet(t, topo, cfg)
	var arrived sim.Time
	var gotSrc, gotSize int
	n.NIC(3).SetReceiver(func(src, size int, payload any) {
		arrived = e.Now()
		gotSrc, gotSize = src, size
		if payload != "hello" {
			t.Errorf("payload = %v", payload)
		}
	})
	n.NIC(0).Send(3, 1024, "hello", nil)
	e.RunAll()
	if gotSrc != 0 || gotSize != 1024 {
		t.Fatalf("src=%d size=%d", gotSrc, gotSize)
	}
	// Path: inject (ser+link) + 3 hops (ser+link+router each).
	ser := serialize(1024, cfg.LinkBandwidth)
	want := serialize(1024, cfg.InjectionBandwidth) + cfg.LinkLatency +
		3*(ser+cfg.LinkLatency+cfg.RouterLatency)
	if arrived != want {
		t.Fatalf("latency = %v, want %v", arrived, want)
	}
}

func TestInjectionBandwidthThrottle(t *testing.T) {
	// Halving injection bandwidth should ~double the time to push many
	// back-to-back large messages from one node — the Fig. 9 mechanism.
	run := func(scale float64) sim.Time {
		topo, _ := NewMesh2D(2, 1)
		cfg := DefaultConfig()
		cfg.InjectionBandwidth *= scale
		e, n := newNet(t, topo, cfg)
		got := 0
		n.NIC(1).SetReceiver(func(int, int, any) { got++ })
		for i := 0; i < 32; i++ {
			n.NIC(0).Send(1, 64<<10, nil, nil)
		}
		e.RunAll()
		if got != 32 {
			t.Fatalf("delivered %d/32", got)
		}
		return e.Now()
	}
	full := run(1)
	eighth := run(1.0 / 8)
	ratio := float64(eighth) / float64(full)
	if ratio < 6 || ratio > 9 {
		t.Errorf("1/8 injection bandwidth ratio = %.2f, want ~8", ratio)
	}
}

func TestLinkContention(t *testing.T) {
	// Two senders share the single middle link of a 3x1 mesh when
	// targeting the far end: total time ~ sum of serializations.
	topo, _ := NewMesh2D(3, 1)
	cfg := DefaultConfig()
	cfg.LinkLatency = 0
	cfg.RouterLatency = 0
	e, n := newNet(t, topo, cfg)
	var last sim.Time
	n.NIC(2).SetReceiver(func(int, int, any) { last = e.Now() })
	const msg = 1 << 20
	n.NIC(0).Send(2, msg, nil, nil)
	n.NIC(1).Send(2, msg, nil, nil)
	e.RunAll()
	// The 1->2 link carries 2 MiB at 3.2 GB/s ≈ 655 us.
	lower := serialize(2*msg, cfg.LinkBandwidth)
	if last < lower {
		t.Errorf("contended delivery at %v, want >= %v", last, lower)
	}
	if last > lower*3/2 {
		t.Errorf("contended delivery at %v, want near %v", last, lower)
	}
}

func TestMessageSegmentation(t *testing.T) {
	topo, _ := NewMesh2D(2, 1)
	cfg := DefaultConfig()
	cfg.MaxPacketBytes = 1024
	e, n := newNet(t, topo, cfg)
	deliveries := 0
	n.NIC(1).SetReceiver(func(src, size int, payload any) {
		deliveries++
		if size != 10_000 {
			t.Errorf("size = %d", size)
		}
		if payload != 42 {
			t.Errorf("payload = %v", payload)
		}
	})
	n.NIC(0).Send(1, 10_000, 42, nil)
	e.RunAll()
	if deliveries != 1 {
		t.Fatalf("message delivered %d times (per-packet leak?)", deliveries)
	}
	// 10 packets on the wire.
	if n.packets.Count() != 10 {
		t.Errorf("packets = %d, want 10", n.packets.Count())
	}
}

func TestSendOrderPreserved(t *testing.T) {
	topo, _ := NewMesh2D(4, 4)
	e, n := newNet(t, topo, DefaultConfig())
	var got []int
	n.NIC(15).SetReceiver(func(src, size int, payload any) {
		got = append(got, payload.(int))
	})
	for i := 0; i < 20; i++ {
		n.NIC(0).Send(15, 100+i, i, nil)
	}
	e.RunAll()
	if len(got) != 20 {
		t.Fatalf("delivered %d/20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestLoopback(t *testing.T) {
	topo, _ := NewMesh2D(2, 2)
	e, n := newNet(t, topo, DefaultConfig())
	ok := false
	n.NIC(1).SetReceiver(func(src, size int, payload any) {
		ok = src == 1 && size == 8
	})
	n.NIC(1).Send(1, 8, nil, nil)
	e.RunAll()
	if !ok {
		t.Fatal("loopback failed")
	}
}

func TestOnSentFiresAtInjection(t *testing.T) {
	topo, _ := NewMesh2D(2, 1)
	cfg := DefaultConfig()
	e, n := newNet(t, topo, cfg)
	var sentAt, recvAt sim.Time
	n.NIC(1).SetReceiver(func(int, int, any) { recvAt = e.Now() })
	n.NIC(0).Send(1, 1<<20, nil, func() { sentAt = e.Now() })
	e.RunAll()
	if sentAt == 0 || recvAt == 0 || sentAt >= recvAt {
		t.Fatalf("sentAt=%v recvAt=%v; want injection before delivery", sentAt, recvAt)
	}
}

func TestFatTreeBisection(t *testing.T) {
	// All-to-all across edge switches: a fat tree with full core count
	// should finish much faster than one squeezed through a single core.
	run := func(cores int) sim.Time {
		topo, err := NewFatTree(4, 4, cores)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		e, n := newNet(t, topo, cfg)
		for i := 0; i < topo.NumNodes(); i++ {
			n.NIC(i).SetReceiver(func(int, int, any) {})
		}
		for i := 0; i < topo.NumNodes(); i++ {
			dst := (i + 4) % topo.NumNodes() // always cross-edge
			n.NIC(i).Send(dst, 256<<10, nil, nil)
		}
		e.RunAll()
		return e.Now()
	}
	wide := run(4)
	narrow := run(1)
	if float64(narrow) < 2*float64(wide) {
		t.Errorf("1-core fat tree (%v) should be >= 2x slower than 4-core (%v)", narrow, wide)
	}
}

func TestNICCounters(t *testing.T) {
	topo, _ := NewMesh2D(2, 1)
	e, n := newNet(t, topo, DefaultConfig())
	n.NIC(1).SetReceiver(func(int, int, any) {})
	n.NIC(0).Send(1, 64, nil, nil)
	n.NIC(0).Send(1, 64, nil, nil)
	e.RunAll()
	if n.NIC(0).Sent() != 2 || n.NIC(1).Received() != 2 {
		t.Fatalf("sent=%d received=%d", n.NIC(0).Sent(), n.NIC(1).Received())
	}
	if n.BytesDelivered() != 128 {
		t.Fatalf("bytes = %d", n.BytesDelivered())
	}
	if n.MessageLatencyMean() <= 0 {
		t.Fatal("latency stat empty")
	}
	if n.Topology() != topo || n.Config().MaxPacketBytes == 0 || n.Name() != "net" {
		t.Fatal("accessors broken")
	}
}

func TestRandomTrafficAllDelivered(t *testing.T) {
	fn := func(seedRaw uint32) bool {
		topo, _ := NewTorus3D(4, 4, 2)
		e, n := newNet(t, topo, DefaultConfig())
		rng := sim.NewRNG(uint64(seedRaw))
		total := 0
		for i := 0; i < topo.NumNodes(); i++ {
			n.NIC(i).SetReceiver(func(int, int, any) { total++ })
		}
		const msgs = 200
		for i := 0; i < msgs; i++ {
			src := rng.Intn(topo.NumNodes())
			dst := rng.Intn(topo.NumNodes())
			n.NIC(src).Send(dst, 1+int(rng.Uint64n(20000)), nil, nil)
		}
		e.RunAll()
		return total == msgs
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNetworkRandomTraffic(b *testing.B) {
	topo, _ := NewTorus3D(8, 8, 1)
	e := sim.NewEngine()
	n, err := NewNetwork(e, "net", topo, DefaultConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < topo.NumNodes(); i++ {
		n.NIC(i).SetReceiver(func(int, int, any) {})
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.NIC(rng.Intn(64)).Send(rng.Intn(64), 4096, nil, nil)
		if i%64 == 63 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func TestHypercubeProperties(t *testing.T) {
	h, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 16 || h.Diameter() != 4 {
		t.Fatalf("shape: %d nodes, diameter %d", h.NumNodes(), h.Diameter())
	}
	// D*2^(D-1) undirected links.
	if got := len(h.Links()); got != 4*8 {
		t.Fatalf("links = %d, want 32", got)
	}
	// Route length equals Hamming distance.
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			r, hops := src, 0
			for {
				nxt := h.Route(r, dst)
				if nxt < 0 {
					break
				}
				r = nxt
				hops++
			}
			want := 0
			for d := src ^ dst; d != 0; d &= d - 1 {
				want++
			}
			if hops != want {
				t.Fatalf("route %d->%d took %d hops, want %d", src, dst, hops, want)
			}
		}
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("dimension 0 accepted")
	}
	if _, err := NewHypercube(30); err == nil {
		t.Error("oversized dimension accepted")
	}
}

func TestButterflyRoutesAndRuns(t *testing.T) {
	bf, err := NewButterfly(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bf.NumNodes() != 16 || bf.NumRouters() != 8 {
		t.Fatalf("shape: %d nodes, %d routers", bf.NumNodes(), bf.NumRouters())
	}
	e, n := newNet(t, bf, DefaultConfig())
	got := 0
	for i := 0; i < 16; i++ {
		n.NIC(i).SetReceiver(func(int, int, any) { got++ })
	}
	for i := 0; i < 16; i++ {
		n.NIC(i).Send(15-i, 4096, nil, nil)
	}
	e.RunAll()
	if got != 16 {
		t.Fatalf("delivered %d/16 over the butterfly", got)
	}
	if _, err := NewButterfly(0, 4); err == nil {
		t.Error("bad butterfly accepted")
	}
}

func TestHypercubeTrafficIntegration(t *testing.T) {
	h, _ := NewHypercube(5)
	e, n := newNet(t, h, DefaultConfig())
	got := 0
	for i := 0; i < 32; i++ {
		n.NIC(i).SetReceiver(func(int, int, any) { got++ })
	}
	rng := sim.NewRNG(9)
	for i := 0; i < 200; i++ {
		n.NIC(rng.Intn(32)).Send(rng.Intn(32), 1+int(rng.Uint64n(8000)), nil, nil)
	}
	e.RunAll()
	if got != 200 {
		t.Fatalf("delivered %d/200", got)
	}
}

func TestNetworkEnergyAccounting(t *testing.T) {
	topo, _ := NewMesh2D(4, 1)
	e, n := newNet(t, topo, DefaultConfig())
	n.NIC(3).SetReceiver(func(int, int, any) {})
	n.NIC(0).Send(3, 1<<20, nil, nil)
	e.RunAll()
	p := DefaultPowerParams()
	en := n.Energy(p)
	if en.DynamicJ <= 0 || en.StaticJ <= 0 || en.StaticW <= 0 {
		t.Fatalf("energy = %+v", en)
	}
	if en.TotalJ() != en.DynamicJ+en.StaticJ {
		t.Fatal("total mismatch")
	}
	// 1 MiB over 3 hops: at least 3 MiB of link-byte traffic.
	minDyn := 3 * float64(1<<20) * p.LinkEnergyPerByteJ
	if en.DynamicJ < minDyn {
		t.Errorf("dynamic %.3g J below hop-count bound %.3g J", en.DynamicJ, minDyn)
	}
	// Halving provisioned bandwidth must halve-ish static power.
	cfg2 := DefaultConfig()
	cfg2.LinkBandwidth /= 2
	cfg2.InjectionBandwidth /= 2
	_, n2 := newNet(t, topo, cfg2)
	if w2 := n2.Energy(p).StaticW; w2 >= en.StaticW {
		t.Errorf("down-provisioned static power %.3g >= full %.3g", w2, en.StaticW)
	}
}

func TestLinkUtilization(t *testing.T) {
	topo, _ := NewMesh2D(2, 1)
	cfg := DefaultConfig()
	cfg.LinkLatency, cfg.RouterLatency = 0, 0
	e, n := newNet(t, topo, cfg)
	n.NIC(1).SetReceiver(func(int, int, any) {})
	if n.LinkUtilization() != 0 || n.HottestLinkUtilization() != 0 {
		t.Fatal("utilization nonzero before any time passes")
	}
	for i := 0; i < 8; i++ {
		n.NIC(0).Send(1, 1<<20, nil, nil)
	}
	e.RunAll()
	hot := n.HottestLinkUtilization()
	if hot < 0.5 || hot > 1.01 {
		t.Errorf("hottest link utilization = %.3f, want near saturation", hot)
	}
	if avg := n.LinkUtilization(); avg <= 0 || avg > hot {
		t.Errorf("avg utilization = %.3f (hot %.3f)", avg, hot)
	}
}
