package par

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sst/internal/sim"
)

// runWithDeadline guards a Run call that is expected to return on its own:
// if it is still going after the deadline the watchdog under test has
// failed and the test reports instead of hanging the suite.
func runWithDeadline(t *testing.T, d time.Duration, r *Runner) (uint64, error) {
	t.Helper()
	type res struct {
		n   uint64
		err error
	}
	ch := make(chan res, 1)
	go func() {
		n, err := r.RunAll()
		ch <- res{n, err}
	}()
	select {
	case out := <-ch:
		return out.n, out.err
	case <-time.After(d):
		t.Fatal("Run did not return: watchdog failed to fire")
		return 0, nil
	}
}

// TestWatchdogZeroDelayLoop pins the headline stall conversion: a model
// stuck in a zero-delay event loop (simulated time never advances, the
// window never completes) must produce a diagnostic error, not a hang.
func TestWatchdogZeroDelayLoop(t *testing.T) {
	r, err := NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := r.Connect("x", sim.Nanosecond, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(any) {})
	b.SetHandler(func(any) {})
	// Rank 0 spins: every event reschedules itself at delay zero.
	eng := r.Rank(0).Engine()
	var spin sim.Handler
	spin = func(any) { eng.Schedule(0, spin, nil) }
	eng.Schedule(0, spin, nil)
	// Rank 1 has normal sparse work.
	r.Rank(1).Engine().Schedule(time0(5), func(any) {}, nil)

	r.SetWatchdog(50 * time.Millisecond)
	_, err = runWithDeadline(t, 10*time.Second, r)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	// The diagnostic must name each rank with its clock and queue state.
	for _, want := range []string{"rank 0", "rank 1", "clock=", "pending=", "outbox="} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q:\n%s", want, err.Error())
		}
	}
}

func time0(ns int64) sim.Time { return sim.Time(ns) * sim.Nanosecond }

// TestWatchdogDoesNotFireOnProgress runs a healthy model with a tight
// watchdog: windows complete quickly, so the watchdog must stay silent.
func TestWatchdogDoesNotFireOnProgress(t *testing.T) {
	forwarders = map[string]*forwardPinger{}
	r, err := NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	buildRing(t, r, 4, 300, 10*sim.Nanosecond)
	first := forwarders["n0"]
	r.Rank(0).Engine().Schedule(0, func(any) { first.recv(0) }, nil)
	r.SetWatchdog(250 * time.Millisecond)
	if _, err := r.RunAll(); err != nil {
		t.Fatalf("healthy run errored: %v", err)
	}
}

// panicComp panics on its Nth received payload.
type panicComp struct {
	name string
	seen int
	at   int
}

func (p *panicComp) Name() string { return p.name }

func (p *panicComp) recv(any) {
	p.seen++
	if p.seen >= p.at {
		panic("injected fault")
	}
}

// TestPanicNamesComponent pins the regression: a panicking component
// handler must surface as a per-rank error that names the component (via
// sim.Guard) and the rank, instead of killing the process.
func TestPanicNamesComponent(t *testing.T) {
	r, err := NewRunner(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := r.Connect("c", sim.Nanosecond, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := &panicComp{name: "victim", at: 1}
	r.Rank(1).Add(pc)
	b.SetHandler(sim.Guard(pc.Name(), pc.recv))
	a.SetHandler(func(any) {})
	r.Rank(0).Engine().Schedule(0, func(any) { a.Send(1) }, nil)

	_, err = runWithDeadline(t, 10*time.Second, r)
	if err == nil {
		t.Fatal("panicking handler produced no error")
	}
	for _, want := range []string{`"victim"`, "rank 1", "injected fault"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
	var pe *sim.PanicError
	if !errors.As(err, &pe) || pe.Component != "victim" {
		t.Errorf("error does not carry the typed PanicError: %v", err)
	}
}

// TestPanicSingleRank covers the sequential fast path: with one rank the
// coordinator runs the engine inline and must still convert the panic.
func TestPanicSingleRank(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := r.Rank(0).Engine()
	eng.Schedule(0, sim.Guard("solo", func(any) { panic("boom") }), nil)
	_, err = r.RunAll()
	if err == nil || !strings.Contains(err.Error(), `"solo"`) {
		t.Fatalf("single-rank panic not converted: %v", err)
	}
}

// TestInterruptStopsRun covers the Ctrl-C path: Interrupt from another
// goroutine makes Run return sim.ErrInterrupted promptly, with partial
// progress recorded, for any rank count.
func TestInterruptStopsRun(t *testing.T) {
	for _, nranks := range []int{1, 2} {
		r, err := NewRunner(nranks)
		if err != nil {
			t.Fatal(err)
		}
		if nranks > 1 {
			a, b, cerr := r.Connect("x", sim.Nanosecond, 0, 1)
			if cerr != nil {
				t.Fatal(cerr)
			}
			a.SetHandler(func(any) {})
			b.SetHandler(func(any) {})
		}
		// Endless (but time-advancing) work on every rank.
		for i := 0; i < nranks; i++ {
			eng := r.Rank(i).Engine()
			var h sim.Handler
			h = func(any) { eng.Schedule(sim.Nanosecond, h, nil) }
			eng.Schedule(0, h, nil)
		}
		go func() {
			time.Sleep(20 * time.Millisecond)
			r.Interrupt()
		}()
		type res struct {
			n   uint64
			err error
		}
		ch := make(chan res, 1)
		go func() {
			n, err := r.RunAll()
			ch <- res{n, err}
		}()
		select {
		case out := <-ch:
			if !errors.Is(out.err, sim.ErrInterrupted) {
				t.Fatalf("nranks=%d: err = %v, want ErrInterrupted", nranks, out.err)
			}
			if out.n == 0 {
				t.Errorf("nranks=%d: no progress before interrupt", nranks)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("nranks=%d: interrupt did not stop the run", nranks)
		}
	}
}
