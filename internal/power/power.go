// Package power provides the analytical technology models SST couples to
// its timing models: activity-based processor energy (Wattch/McPAT style),
// area with superlinear issue-width scaling, die yield and chip cost, and
// memory pricing. Together with the dram package's energy accounting these
// reproduce the power/cost axes of the design-space exploration studies.
package power

import (
	"fmt"
	"math"
)

// CoreParams calibrates one core's energy/area model. The width exponent
// follows the classic superscalar scaling result that register-file energy
// per access and area grow roughly O(w^1.8) with issue width.
type CoreParams struct {
	// BaseOpJ is the width-independent energy per retired operation
	// (ALU, decode, clocking).
	BaseOpJ float64
	// PortOpJ is the width-sensitive per-op energy at width 1 (register
	// file and bypass ports); it scales by w^EnergyExp.
	PortOpJ float64
	// WidthExp is the superlinear AREA exponent (default 1.8): register
	// file and bypass area grow roughly O(w^1.8) with issue width.
	WidthExp float64
	// EnergyExp is the PER-OP energy width exponent (default 0.5):
	// per-access port energy grows ~w^1.8, but the port cost is
	// amortized over the ops issued per cycle and only part of an op's
	// energy is width-sensitive, so the net per-op sensitivity is mild.
	EnergyExp float64
	// StaticW is leakage power at width 1; it scales with area.
	StaticW float64
	// BaseAreaMM2 is width-independent core area (caches excluded).
	BaseAreaMM2 float64
	// PortAreaMM2 is width-sensitive area at width 1, scaling by
	// w^WidthExp.
	PortAreaMM2 float64
	// FloatMult scales the per-op energy of floating-point operations.
	FloatMult float64
	// MemMult scales the per-op energy of loads/stores (core side).
	MemMult float64
}

// DefaultCoreParams is calibrated to a mid-2000s 45-65 nm general-purpose
// core: ~100 pJ/op scalar, ~10 mm², ~0.5 W leakage.
func DefaultCoreParams() CoreParams {
	return CoreParams{
		BaseOpJ:     800e-12,
		PortOpJ:     300e-12,
		WidthExp:    1.8,
		EnergyExp:   0.5,
		StaticW:     0.25,
		BaseAreaMM2: 6,
		PortAreaMM2: 2,
		FloatMult:   2.0,
		MemMult:     1.5,
	}
}

// Validate checks ranges and fills the default exponent.
func (p *CoreParams) Validate() error {
	if p.BaseOpJ < 0 || p.PortOpJ < 0 || p.StaticW < 0 || p.BaseAreaMM2 <= 0 {
		return fmt.Errorf("power: negative or zero core parameters")
	}
	if p.WidthExp == 0 {
		p.WidthExp = 1.8
	}
	if p.EnergyExp == 0 {
		p.EnergyExp = 0.5
	}
	if p.FloatMult == 0 {
		p.FloatMult = 1
	}
	if p.MemMult == 0 {
		p.MemMult = 1
	}
	return nil
}

// widthScale returns w^WidthExp.
func (p CoreParams) widthScale(width int) float64 {
	return math.Pow(float64(width), p.WidthExp)
}

// EnergyPerOpJ returns the dynamic energy of one retired op of unit class
// on a width-wide core.
func (p CoreParams) EnergyPerOpJ(width int) float64 {
	return p.BaseOpJ + p.PortOpJ*math.Pow(float64(width), p.EnergyExp)
}

// AreaMM2 returns the core area at the given issue width.
func (p CoreParams) AreaMM2(width int) float64 {
	return p.BaseAreaMM2 + p.PortAreaMM2*p.widthScale(width)
}

// StaticPowerW returns leakage at the given width (proportional to area).
func (p CoreParams) StaticPowerW(width int) float64 {
	return p.StaticW * p.AreaMM2(width) / p.AreaMM2(1)
}

// CoreActivity is the retired-operation census a timing run produces.
type CoreActivity struct {
	IntOps   uint64
	FloatOps uint64
	MemOps   uint64
	Branches uint64
	Cycles   uint64
	Seconds  float64
}

// Ops returns total retired operations.
func (a CoreActivity) Ops() uint64 {
	return a.IntOps + a.FloatOps + a.MemOps + a.Branches
}

// CoreEnergyJ integrates a run's core energy: per-class dynamic energy plus
// leakage over the run time.
func (p CoreParams) CoreEnergyJ(width int, act CoreActivity) float64 {
	eop := p.EnergyPerOpJ(width)
	dyn := eop*float64(act.IntOps+act.Branches) +
		eop*p.FloatMult*float64(act.FloatOps) +
		eop*p.MemMult*float64(act.MemOps)
	return dyn + p.StaticPowerW(width)*act.Seconds
}

// CorePowerW returns average power over the run.
func (p CoreParams) CorePowerW(width int, act CoreActivity) float64 {
	if act.Seconds == 0 {
		return 0
	}
	return p.CoreEnergyJ(width, act) / act.Seconds
}
