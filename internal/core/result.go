package core

import (
	"bytes"
	"fmt"
	"io"

	"sst/internal/stats"
)

// Result is what every study and sweep in this package returns: a rendered
// table plus machine-readable JSON/CSV exports. CLIs render any study
// uniformly through it instead of switching on concrete types.
type Result interface {
	// Table returns the study's rendered table.
	Table() *stats.Table
	// WriteJSON emits the result as JSON.
	WriteJSON(w io.Writer) error
	// WriteCSV emits the result as CSV.
	WriteCSV(w io.Writer) error
}

// TableResult implements Result for studies whose exportable form is a
// single table; study result types embed it and add their typed data
// alongside.
type TableResult struct {
	Tab *stats.Table
}

// Table implements Result.
func (r TableResult) Table() *stats.Table { return r.Tab }

// WriteJSON implements Result.
func (r TableResult) WriteJSON(w io.Writer) error { return r.Tab.WriteJSON(w) }

// WriteCSV implements Result.
func (r TableResult) WriteCSV(w io.Writer) error { return r.Tab.WriteCSV(w) }

// Format selects a rendering for study results.
type Format int

const (
	// FormatTable renders aligned text tables (the default).
	FormatTable Format = iota
	// FormatJSON renders JSON ({title, columns, rows} per table).
	FormatJSON
	// FormatCSV renders CSV with the title as a comment line.
	FormatCSV
)

// ParseFormat parses "table", "json" or "csv".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "table":
		return FormatTable, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	}
	return FormatTable, fmt.Errorf("core: unknown format %q (want table, json or csv)", s)
}

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatCSV:
		return "csv"
	}
	return "table"
}

// WriteResults renders results in the given format: tables separated by
// blank lines, CSV blocks back to back, or JSON — a single object for one
// result, an array for several (so the output is always one valid JSON
// document).
func WriteResults(w io.Writer, f Format, results ...Result) error {
	switch f {
	case FormatJSON:
		if len(results) == 1 {
			return results[0].WriteJSON(w)
		}
		if _, err := io.WriteString(w, "[\n"); err != nil {
			return err
		}
		for i, r := range results {
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf); err != nil {
				return err
			}
			if _, err := w.Write(bytes.TrimRight(buf.Bytes(), "\n")); err != nil {
				return err
			}
			sep := "\n"
			if i < len(results)-1 {
				sep = ",\n"
			}
			if _, err := io.WriteString(w, sep); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "]\n")
		return err
	case FormatCSV:
		for _, r := range results {
			if err := r.WriteCSV(w); err != nil {
				return err
			}
		}
		return nil
	default:
		for i, r := range results {
			if i > 0 {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			r.Table().Render(w)
		}
		return nil
	}
}
