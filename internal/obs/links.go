package obs

import "sst/internal/sim"

// LinkStats counts traffic on one link: delivered messages, their payload
// bytes (for payloads implementing sim.Sized) and sends dropped by a fault
// interceptor beneath the counter.
type LinkStats struct {
	Name    string `json:"name"`
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Dropped uint64 `json:"dropped"`
}

// InstrumentLink installs traffic counters on the link and returns them.
// It wraps — rather than displaces — any interceptor already present, so
// it composes with fault injection: install faults first, then counters,
// and the counters see exactly what the faults let through (drops are
// tallied in Dropped). Counters run on the link's sending side in event
// order, adding no simulated time.
func InstrumentLink(l *sim.Link) *LinkStats {
	s := &LinkStats{Name: l.Name()}
	inner := l.Interceptor()
	l.SetIntercept(func(from *sim.Port, delay sim.Time, payload any) (sim.Time, any, bool) {
		if inner != nil {
			var ok bool
			if delay, payload, ok = inner(from, delay, payload); !ok {
				s.Dropped++
				return delay, payload, false
			}
		}
		s.Msgs++
		if sz, ok := payload.(sim.Sized); ok {
			s.Bytes += uint64(sz.PayloadBytes())
		}
		return delay, payload, true
	})
	return s
}
