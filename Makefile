# gosst build/verify entry points.
#
#   make check   — the CI gate: vet + full tests + race on the packages
#                  with concurrency (sim kernel, parallel runtime, sweeps)
#   make bench   — regenerate every experiment table ("reproduce the paper")

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep scheduler (internal/core), the PDES runtime (internal/par) and
# the event kernel they drive (internal/sim) are the only places goroutines
# touch shared structures; the race detector must stay clean there.
race:
	$(GO) test -race ./internal/sim/... ./internal/par/... ./internal/core/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x
