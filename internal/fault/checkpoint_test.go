package fault

import (
	"math"
	"testing"
)

func TestCheckpointNoFailures(t *testing.T) {
	// MTBF so long no failure ever fires inside the run: the makespan is
	// exactly work plus one checkpoint per non-final segment.
	m := CheckpointModel{WorkS: 3600, CheckpointS: 10, RestartS: 60, MTBFS: 1e15}
	st, err := m.Simulate(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	want := 3600.0 + 5*10 // 6 segments, 5 checkpoints (the last commits by finishing)
	if math.Abs(st.MakespanS-want) > 1e-6 {
		t.Errorf("makespan = %v, want %v", st.MakespanS, want)
	}
	if st.Failures != 0 || st.Checkpoints != 5 || st.LostWorkS != 0 {
		t.Errorf("stats = %+v, want 0 failures, 5 checkpoints, 0 lost", st)
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	m := CheckpointModel{WorkS: 10000, CheckpointS: 60, RestartS: 120, MTBFS: 3600}
	tau := YoungInterval(m.CheckpointS, m.MTBFS)
	a, err := m.Simulate(99, tau)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate(99, tau)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Failures == 0 {
		t.Fatal("MTBF 1h over a >10000s run produced no failures; model inert")
	}
	c, err := m.Simulate(100, tau)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical stats")
	}
}

// TestCheckpointMatchesDaly cross-checks the event-driven simulation
// against Daly's closed-form expected makespan. Seeds are fixed, so the
// sample mean is a constant: the test is exact, not statistical.
func TestCheckpointMatchesDaly(t *testing.T) {
	m := CheckpointModel{WorkS: 10000, CheckpointS: 60, RestartS: 120, MTBFS: 3600}
	tau := YoungInterval(m.CheckpointS, m.MTBFS)
	const trials = 25
	var mean float64
	for s := uint64(0); s < trials; s++ {
		st, err := m.Simulate(s, tau)
		if err != nil {
			t.Fatal(err)
		}
		mean += st.MakespanS / trials
	}
	oracle := DalyMakespan(m.WorkS, m.CheckpointS, m.RestartS, m.MTBFS, tau)
	if ratio := mean / oracle; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("simulated mean makespan %.0fs vs Daly %.0fs (ratio %.3f, want within 15%%)",
			mean, oracle, ratio)
	}
}

func TestCheckpointIntervalTradeoffBracketsYoung(t *testing.T) {
	// The simulated makespan, averaged over seeds, must be worse at a
	// quarter and at four times the Young interval than at Young itself —
	// i.e. the simulation reproduces the U-shaped tradeoff the resilience
	// study sweeps.
	m := CheckpointModel{WorkS: 20000, CheckpointS: 60, RestartS: 120, MTBFS: 3600}
	tau := YoungInterval(m.CheckpointS, m.MTBFS)
	avg := func(interval float64) float64 {
		const trials = 20
		var sum float64
		for s := uint64(0); s < trials; s++ {
			st, err := m.Simulate(s, interval)
			if err != nil {
				t.Fatal(err)
			}
			sum += st.MakespanS
		}
		return sum / trials
	}
	atYoung, low, high := avg(tau), avg(tau/4), avg(tau*4)
	if atYoung >= low || atYoung >= high {
		t.Errorf("no U-shape: makespan(τ/4)=%.0f makespan(τ)=%.0f makespan(4τ)=%.0f",
			low, atYoung, high)
	}
}

func TestCheckpointNoProgressAborts(t *testing.T) {
	// MTBF far below the checkpoint cost: no segment can ever commit. The
	// run must abort with an error instead of looping forever.
	m := CheckpointModel{WorkS: 1000, CheckpointS: 500, RestartS: 100, MTBFS: 1}
	if _, err := m.Simulate(3, 500); err == nil {
		t.Fatal("zero-progress run did not abort")
	}
}

func TestCheckpointValidation(t *testing.T) {
	good := CheckpointModel{WorkS: 100, CheckpointS: 1, RestartS: 1, MTBFS: 100}
	if _, err := good.Simulate(1, -5); err == nil {
		t.Error("negative interval accepted")
	}
	bad := []CheckpointModel{
		{WorkS: 0, CheckpointS: 1, RestartS: 1, MTBFS: 100},
		{WorkS: 100, CheckpointS: -1, RestartS: 1, MTBFS: 100},
		{WorkS: 100, CheckpointS: 1, RestartS: 1, MTBFS: 0},
		{WorkS: math.NaN(), CheckpointS: 1, RestartS: 1, MTBFS: 100},
		{WorkS: math.Inf(1), CheckpointS: 1, RestartS: 1, MTBFS: 100},
	}
	for i, m := range bad {
		if _, err := m.Simulate(1, 10); err == nil {
			t.Errorf("case %d: invalid model accepted: %+v", i, m)
		}
	}
}

func TestYoungDalyClosedForms(t *testing.T) {
	if got, want := YoungInterval(60, 3600), math.Sqrt(2*60*3600.0); got != want {
		t.Errorf("YoungInterval = %v, want %v", got, want)
	}
	// Daly refines Young downward-ish but stays the same order of
	// magnitude for C << M, and degenerates to M when C >= 2M.
	y, d := YoungInterval(60, 3600), DalyInterval(60, 3600)
	if d <= 0 || d > 2*y {
		t.Errorf("DalyInterval %v implausible next to Young %v", d, y)
	}
	if got := DalyInterval(100, 10); got != 10 {
		t.Errorf("degenerate DalyInterval = %v, want MTBF", got)
	}
}
