package workload

import (
	"testing"

	"sst/internal/frontend"
	"sst/internal/mem"
	"sst/internal/noc"
	"sst/internal/sim"
)

// drain consumes a kernel's stream, returning per-class counts.
func drain(t *testing.T, k *Kernel) map[frontend.Class]uint64 {
	t.Helper()
	s := k.Stream()
	defer s.Close()
	counts := map[frontend.Class]uint64{}
	var op frontend.Op
	for s.Next(&op) {
		counts[op.Class]++
		if op.Class == frontend.ClassLoad || op.Class == frontend.ClassStore {
			if op.Size == 0 {
				t.Fatalf("%s: memory op with zero size", k.Name)
			}
		}
	}
	return counts
}

func TestHPCCGOpCensus(t *testing.T) {
	k := HPCCG(4, 1)
	c := drain(t, k)
	rows := uint64(4 * 4 * 4)
	// SpMV loads: 54 per row; dots: 3 loads per row; axpys: 6 loads.
	wantLoads := rows * (54 + 3 + 6)
	if c[frontend.ClassLoad] != wantLoads {
		t.Errorf("loads = %d, want %d", c[frontend.ClassLoad], wantLoads)
	}
	// Stores: 1 (SpMV) + 3 (axpys) per row.
	if c[frontend.ClassStore] != rows*4 {
		t.Errorf("stores = %d, want %d", c[frontend.ClassStore], rows*4)
	}
	if c[frontend.ClassFloat] == 0 {
		t.Error("no flops")
	}
	if k.Intensity() <= 0 {
		t.Error("intensity not positive")
	}
}

func TestHPCCGGatherLocality(t *testing.T) {
	// Neighbor gathers must stay within the x-vector region and hit 27
	// distinct-or-clamped cells around each row.
	k := HPCCG(3, 1)
	s := k.Stream()
	defer s.Close()
	var op frontend.Op
	for s.Next(&op) {
		if op.Class != frontend.ClassLoad {
			continue
		}
		if op.Addr >= baseP && op.Addr < baseP+27*8*27 {
			// Gather region for the small grid: fine.
			continue
		}
	}
}

func TestKernelsProduceBoundedStreams(t *testing.T) {
	kernels := []*Kernel{
		HPCCG(3, 1),
		Lulesh(64, 2),
		Stencil(6, 2),
		STREAMTriad(128, 2),
		GUPS(1<<20, 100, 1),
		FEA(32, 2),
	}
	for _, k := range kernels {
		c := drain(t, k)
		total := uint64(0)
		for _, v := range c {
			total += v
		}
		if total == 0 {
			t.Errorf("%s: empty stream", k.Name)
		}
	}
}

func TestStencilAddressesInBounds(t *testing.T) {
	k := Stencil(5, 1)
	s := k.Stream()
	defer s.Close()
	cells := uint64(5 * 5 * 5)
	var op frontend.Op
	for s.Next(&op) {
		if op.Class == frontend.ClassLoad {
			if op.Addr < baseX || op.Addr >= baseY+cells*8 {
				t.Fatalf("stencil load at %#x out of region", op.Addr)
			}
		}
	}
}

func TestGUPSDependentChain(t *testing.T) {
	k := GUPS(1<<20, 50, 7)
	s := k.Stream()
	defer s.Close()
	var op frontend.Op
	loads := 0
	for s.Next(&op) {
		if op.Class == frontend.ClassLoad {
			loads++
			if op.Dst != 1 || op.Src1 != 1 {
				t.Fatal("GUPS load not chained through r1")
			}
		}
	}
	if loads != 50 {
		t.Fatalf("loads = %d", loads)
	}
}

func TestFEASmallWorkingSet(t *testing.T) {
	k := FEA(100, 1)
	s := k.Stream()
	defer s.Close()
	var op frontend.Op
	for s.Next(&op) {
		if op.Class == frontend.ClassLoad || op.Class == frontend.ClassStore {
			if op.Addr < baseX || op.Addr >= baseX+(16<<10) {
				t.Fatalf("FEA access at %#x escapes the cache-resident set", op.Addr)
			}
		}
	}
}

func TestFlopChainILPBounds(t *testing.T) {
	ks := frontend.NewKernelStream(func(e *frontend.Emitter) {
		flopChain(e, 100, 4)
	})
	defer ks.Close()
	var op frontend.Op
	regs := map[uint8]bool{}
	for ks.Next(&op) {
		if op.Class != frontend.ClassFloat || op.Dst != op.Src1 || op.Dst == 0 {
			t.Fatal("flopChain op malformed")
		}
		regs[op.Dst] = true
	}
	if len(regs) != 4 {
		t.Fatalf("accumulators = %d, want 4", len(regs))
	}
}

// --- skeleton app tests ---

func newRing(t testing.TB, n int, cfg noc.NetConfig) (*sim.Engine, *noc.Network) {
	t.Helper()
	topo, err := noc.NewTorus3D(n, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	net, err := noc.NewNetwork(e, "net", topo, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, net
}

func TestScriptPingPong(t *testing.T) {
	e, net := newRing(t, 2, noc.DefaultConfig())
	s0, s1 := &Script{}, &Script{}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		s0.Send(1, 1024)
		s0.Recv(1)
		s1.Recv(0)
		s1.Send(0, 1024)
	}
	app, err := NewApp(e, "pingpong", net, []*Script{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	app.Start(func() { done = true })
	e.RunAll()
	if !done || !app.Done() {
		t.Fatal("ping-pong never completed (recv matching broken?)")
	}
	if app.Elapsed() == 0 {
		t.Fatal("elapsed time zero")
	}
}

func TestScriptComputeOnly(t *testing.T) {
	e, net := newRing(t, 2, noc.DefaultConfig())
	s := &Script{}
	s.Compute(5 * sim.Microsecond)
	s.Compute(5 * sim.Microsecond)
	app, _ := NewApp(e, "compute", net, []*Script{s})
	app.Start(nil)
	e.RunAll()
	if !app.Done() {
		t.Fatal("not done")
	}
	if app.Elapsed() != 10*sim.Microsecond {
		t.Fatalf("elapsed = %v, want 10us", app.Elapsed())
	}
}

func TestAllReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		e, net := newRing(t, n, noc.DefaultConfig())
		scripts := make([]*Script, n)
		for r := 0; r < n; r++ {
			s := &Script{}
			s.AllReduce(r, n, 64)
			s.Barrier(r, n)
			scripts[r] = s
		}
		app, err := NewApp(e, "allreduce", net, scripts)
		if err != nil {
			t.Fatal(err)
		}
		app.Start(nil)
		e.RunAll()
		if !app.Done() {
			t.Fatalf("all-reduce deadlocked at n=%d", n)
		}
	}
}

func TestRecvBeforeSendArrival(t *testing.T) {
	// Rank 1 posts its recv long before rank 0 sends: blocking recv must
	// wake on delivery.
	e, net := newRing(t, 2, noc.DefaultConfig())
	s0, s1 := &Script{}, &Script{}
	s0.Compute(1 * sim.Millisecond)
	s0.Send(1, 64)
	s1.Recv(0)
	app, _ := NewApp(e, "latersend", net, []*Script{s0, s1})
	app.Start(nil)
	e.RunAll()
	if !app.Done() {
		t.Fatal("blocked recv never woke")
	}
	if app.MaxWaitTime() < sim.Millisecond/2 {
		t.Errorf("wait time = %v, want ~1ms", app.MaxWaitTime())
	}
}

func TestCommProfilesComplete(t *testing.T) {
	for _, p := range []CommProfile{CTHProfile, SAGEProfile, CharonProfile, XNOBELProfile} {
		p.Steps = 2 // shrink for the unit test
		const n = 8
		e, net := newRing(t, n, noc.DefaultConfig())
		app, err := NewApp(e, p.Name, net, p.Scripts(n))
		if err != nil {
			t.Fatal(err)
		}
		app.Start(nil)
		e.RunAll()
		if !app.Done() {
			t.Fatalf("profile %s deadlocked", p.Name)
		}
	}
}

func TestBandwidthBoundVsLatencyBoundDegradation(t *testing.T) {
	// The Fig. 9 mechanism in miniature: scaling injection bandwidth to
	// 1/8 must hurt the large-message profile far more than the
	// small-message profile.
	run := func(p CommProfile, scale float64) sim.Time {
		const n = 8
		cfg := noc.DefaultConfig()
		cfg.InjectionBandwidth *= scale
		e, net := newRing(t, n, cfg)
		p.Steps = 4
		app, err := NewApp(e, p.Name, net, p.Scripts(n))
		if err != nil {
			t.Fatal(err)
		}
		app.Start(nil)
		e.RunAll()
		if !app.Done() {
			t.Fatalf("%s did not complete", p.Name)
		}
		return app.Elapsed()
	}
	cthSlowdown := float64(run(CTHProfile, 1.0/8)) / float64(run(CTHProfile, 1))
	charonSlowdown := float64(run(CharonProfile, 1.0/8)) / float64(run(CharonProfile, 1))
	if cthSlowdown < 1.5 {
		t.Errorf("CTH-like slowdown at 1/8 bandwidth = %.2f, want > 1.5", cthSlowdown)
	}
	if charonSlowdown > 1.15 {
		t.Errorf("Charon-like slowdown at 1/8 bandwidth = %.2f, want ~1", charonSlowdown)
	}
	if cthSlowdown < 2*charonSlowdown {
		t.Errorf("bandwidth-bound (%.2f) vs latency-bound (%.2f) separation too small", cthSlowdown, charonSlowdown)
	}
}

func TestAppValidation(t *testing.T) {
	e, net := newRing(t, 2, noc.DefaultConfig())
	if _, err := NewApp(e, "x", net, make([]*Script, 5)); err == nil {
		t.Fatal("too many ranks accepted")
	}
	app, err := NewApp(e, "empty", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	app.Start(func() { done = true })
	if !done {
		t.Fatal("empty app should finish immediately")
	}
}

func TestScriptSteps(t *testing.T) {
	s := &Script{}
	s.Compute(1)
	s.Send(0, 1)
	s.Recv(0)
	if s.Steps() != 3 {
		t.Fatalf("steps = %d", s.Steps())
	}
	// AllReduce on 8 ranks: 3 rounds x (send+recv).
	s2 := &Script{}
	s2.AllReduce(0, 8, 8)
	if s2.Steps() != 6 {
		t.Fatalf("allreduce steps = %d, want 6", s2.Steps())
	}
	s3 := &Script{}
	s3.AllReduce(0, 1, 8)
	if s3.Steps() != 0 {
		t.Fatal("single-rank allreduce should be empty")
	}
}

func TestMiniMDCensusAndLocality(t *testing.T) {
	k := MiniMD(64, 8, 1, 3)
	s := k.Stream()
	defer s.Close()
	var loads, flops, stores, branches int
	var op frontend.Op
	for s.Next(&op) {
		switch op.Class {
		case frontend.ClassLoad:
			loads++
		case frontend.ClassFloat:
			flops++
		case frontend.ClassStore:
			stores++
		case frontend.ClassBranch:
			branches++
		}
	}
	// Per atom: 3 own-position + 8*(1 index + 3 neighbor) loads.
	if want := 64 * (3 + 8*4); loads != want {
		t.Errorf("loads = %d, want %d", loads, want)
	}
	if want := 64 * 8 * 12; flops != want {
		t.Errorf("flops = %d, want %d", flops, want)
	}
	if stores != 64*3 || branches != 64 {
		t.Errorf("stores=%d branches=%d", stores, branches)
	}
	if k.Intensity() <= 0 {
		t.Error("intensity")
	}
}

func TestMiniMDDeterministicNeighbors(t *testing.T) {
	collect := func() []frontend.Op {
		k := MiniMD(32, 4, 1, 7)
		s := k.Stream()
		defer s.Close()
		var ops []frontend.Op
		var op frontend.Op
		for s.Next(&op) {
			ops = append(ops, op)
		}
		return ops
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Class != b[i].Class {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestMiniMDCacheFriendly(t *testing.T) {
	// Neighbor gathers cluster within a 64-atom window: a cache holding
	// the window should hit most of the time.
	e := sim.NewEngine()
	lower := mem.NewSimpleMemory(e, "mem", 100*sim.Nanosecond, 0, nil)
	c, err := mem.NewCache(e, mem.CacheConfig{
		Name: "l1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8,
		HitLatency: sim.Nanosecond, MSHRs: 8, WriteBack: true,
	}, lower, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := MiniMD(512, 8, 1, 1)
	s := k.Stream()
	defer s.Close()
	var op frontend.Op
	pending := 0
	for s.Next(&op) {
		if op.Class == frontend.ClassLoad || op.Class == frontend.ClassStore {
			mop := mem.Read
			if op.Class == frontend.ClassStore {
				mop = mem.Write
			}
			pending++
			c.Access(mop, op.Addr, int(op.Size), func() { pending-- })
			e.RunAll()
		}
	}
	if pending != 0 {
		t.Fatal("accesses unresolved")
	}
	if hr := c.HitRate(); hr < 0.8 {
		t.Errorf("miniMD hit rate = %.3f, want > 0.8 (neighbor locality)", hr)
	}
}

func TestAppOverDetailedNetwork(t *testing.T) {
	// The same skeleton profile must complete over the detailed
	// (credit-based) fabric, and take at least as long as over the fast
	// model.
	run := func(detailed bool) sim.Time {
		const n = 8
		topo, err := noc.NewMesh2D(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine()
		p := CTHProfile
		p.Steps = 2
		var app *App
		if detailed {
			net, err := noc.NewDetailedNetwork(e, "dnet", topo, noc.DefaultConfig(), 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			app, err = NewAppDetailed(e, p.Name, net, p.Scripts(n))
			if err != nil {
				t.Fatal(err)
			}
		} else {
			net, err := noc.NewNetwork(e, "net", topo, noc.DefaultConfig(), nil)
			if err != nil {
				t.Fatal(err)
			}
			app, err = NewApp(e, p.Name, net, p.Scripts(n))
			if err != nil {
				t.Fatal(err)
			}
		}
		app.Start(nil)
		e.RunAll()
		if !app.Done() {
			t.Fatalf("detailed=%v: app deadlocked", detailed)
		}
		return app.Elapsed()
	}
	fast := run(false)
	det := run(true)
	if det < fast {
		t.Errorf("detailed fabric (%v) finished before fast fabric (%v)", det, fast)
	}
}

func TestNewAppOnPortsValidation(t *testing.T) {
	e, net := newRing(t, 2, noc.DefaultConfig())
	_ = net
	if _, err := NewAppOnPorts(e, "x", nil, make([]*Script, 2)); err == nil {
		t.Fatal("port/script mismatch accepted")
	}
}
