package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoreParamsValidate(t *testing.T) {
	p := CoreParams{BaseOpJ: -1, BaseAreaMM2: 1}
	if err := p.Validate(); err == nil {
		t.Error("negative energy accepted")
	}
	p = CoreParams{BaseOpJ: 1e-12, PortOpJ: 1e-12, BaseAreaMM2: 5}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.WidthExp != 1.8 || p.EnergyExp != 0.5 || p.FloatMult != 1 || p.MemMult != 1 {
		t.Errorf("defaults not filled: %+v", p)
	}
	d := DefaultCoreParams()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAreaSuperlinear(t *testing.T) {
	p := DefaultCoreParams()
	a1, a8 := p.AreaMM2(1), p.AreaMM2(8)
	if a8 <= a1 {
		t.Fatal("area not increasing with width")
	}
	// The width-sensitive part must scale superlinearly: port area at 8
	// wide is 8^1.8 ≈ 42x the width-1 port area.
	portRatio := (a8 - p.BaseAreaMM2) / (a1 - p.BaseAreaMM2)
	if portRatio < 40 || portRatio > 45 {
		t.Errorf("port area ratio = %.1f, want ~42 (8^1.8)", portRatio)
	}
}

func TestEnergyPerOpIncreasesWithWidth(t *testing.T) {
	p := DefaultCoreParams()
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8} {
		e := p.EnergyPerOpJ(w)
		if e <= prev {
			t.Fatalf("energy/op not increasing at width %d", w)
		}
		prev = e
	}
	// Energy per op grows far more slowly than area (amortized ports).
	eRatio := p.EnergyPerOpJ(8) / p.EnergyPerOpJ(1)
	aRatio := p.AreaMM2(8) / p.AreaMM2(1)
	if eRatio >= aRatio {
		t.Errorf("energy ratio %.2f should be below area ratio %.2f", eRatio, aRatio)
	}
}

func TestStaticPowerTracksArea(t *testing.T) {
	p := DefaultCoreParams()
	r := p.StaticPowerW(8) / p.StaticPowerW(1)
	a := p.AreaMM2(8) / p.AreaMM2(1)
	if math.Abs(r-a) > 1e-9 {
		t.Fatalf("static ratio %v != area ratio %v", r, a)
	}
}

func TestCoreEnergyComposition(t *testing.T) {
	p := DefaultCoreParams()
	act := CoreActivity{IntOps: 1000, FloatOps: 500, MemOps: 200, Branches: 100, Seconds: 1e-6}
	e := p.CoreEnergyJ(2, act)
	eop := p.EnergyPerOpJ(2)
	want := eop*1100 + eop*p.FloatMult*500 + eop*p.MemMult*200 + p.StaticPowerW(2)*1e-6
	if math.Abs(e-want) > 1e-15 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
	if act.Ops() != 1800 {
		t.Fatalf("Ops = %d", act.Ops())
	}
	if p.CorePowerW(2, act) != e/1e-6 {
		t.Fatal("power != energy/seconds")
	}
	if p.CorePowerW(2, CoreActivity{}) != 0 {
		t.Fatal("zero-time power not 0")
	}
}

func TestDiesPerWafer(t *testing.T) {
	c := DefaultCostParams()
	small := c.DiesPerWafer(50)
	big := c.DiesPerWafer(400)
	if small <= big || big <= 0 {
		t.Fatalf("dies: 50mm²=%v 400mm²=%v", small, big)
	}
	// 300mm wafer is ~70685 mm²; a 50 mm² die should give on the order
	// of 1000+ dies.
	if small < 1000 || small > 1500 {
		t.Errorf("50mm² dies/wafer = %v, want ~1200", small)
	}
	if c.DiesPerWafer(0) != 0 {
		t.Error("zero-area dies not 0")
	}
}

func TestYieldDecreasesWithArea(t *testing.T) {
	c := DefaultCostParams()
	fn := func(a1Raw, a2Raw uint16) bool {
		a1 := float64(a1Raw%1000) + 1
		a2 := a1 + float64(a2Raw%1000) + 1
		y1, y2 := c.Yield(a1), c.Yield(a2)
		return y1 > y2 && y1 <= 1 && y2 > 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDieCostSuperlinear(t *testing.T) {
	c := DefaultCostParams()
	// Doubling area should more than double pre-package silicon cost
	// (fewer dies AND lower yield).
	c.PackageTestUSD = 0
	c100 := c.DieCostUSD(100)
	c200 := c.DieCostUSD(200)
	if c200 <= 2*c100 {
		t.Errorf("200mm² die $%.2f vs 100mm² $%.2f: cost not superlinear", c200, c100)
	}
	if math.IsInf(c.DieCostUSD(1e9), 1) == false {
		t.Error("absurd die should cost infinity")
	}
}

func TestCostValidate(t *testing.T) {
	c := CostParams{}
	if err := c.Validate(); err == nil {
		t.Error("zero wafer accepted")
	}
	c = CostParams{WaferDiameterMM: 300, WaferCostUSD: 1000}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.ClusterAlpha != 3 {
		t.Error("alpha default not filled")
	}
}

func TestMemoryCost(t *testing.T) {
	if MemoryCostUSD(8, 16) != 128 {
		t.Fatal("memory cost")
	}
}

func TestNodeBudget(t *testing.T) {
	b := NodeBudget{
		CoreEnergyJ: 2, MemEnergyJ: 1, Seconds: 0.5,
		ChipCostUSD: 100, MemCostUSD: 50,
	}
	if b.TotalEnergyJ() != 3 {
		t.Fatal("total energy")
	}
	if b.AvgPowerW() != 6 {
		t.Fatal("avg power")
	}
	if b.TotalCostUSD() != 150 {
		t.Fatal("total cost")
	}
	if b.PerfPerWatt(60) != 10 {
		t.Fatal("perf/W")
	}
	if b.PerfPerDollar(300) != 2 {
		t.Fatal("perf/$")
	}
	empty := NodeBudget{}
	if empty.AvgPowerW() != 0 || empty.PerfPerWatt(1) != 0 || empty.PerfPerDollar(1) != 0 {
		t.Fatal("zero guards")
	}
}

// TestWidthEfficiencyShape checks the qualitative Fig. 12 result with the
// default models: assuming perf grows sublinearly with width (as the
// simulations show), narrow cores win power efficiency and mid cores win
// cost efficiency.
func TestWidthEfficiencyShape(t *testing.T) {
	p := DefaultCoreParams()
	c := DefaultCostParams()
	// Representative measured speedups (memory-bound miniapp shape).
	perf := map[int]float64{1: 1.0, 2: 1.35, 4: 1.6, 8: 1.78}
	uncoreMM2 := 40.0 // caches and I/O shared by all configs
	effW := map[int]float64{}
	effD := map[int]float64{}
	for _, w := range []int{1, 2, 4, 8} {
		seconds := 1.0 / perf[w]
		ops := 1e9
		act := CoreActivity{IntOps: uint64(ops), Seconds: seconds}
		e := p.CoreEnergyJ(w, act)
		effW[w] = perf[w] / (e / seconds)
		effD[w] = perf[w] / c.DieCostUSD(p.AreaMM2(w)+uncoreMM2)
	}
	if !(effW[1] > effW[4] && effW[2] > effW[8]) {
		t.Errorf("power efficiency shape wrong: %v", effW)
	}
	best := 1
	for _, w := range []int{2, 4, 8} {
		if effD[w] > effD[best] {
			best = w
		}
	}
	if best != 2 && best != 4 {
		t.Errorf("cost efficiency best at width %d, want 2-4: %v", best, effD)
	}
}
