package sim

import "testing"

func TestLinkDelivery(t *testing.T) {
	e := NewEngine()
	a, b := Connect(e, "l0", 5*Nanosecond)
	var arrived Time
	var got any
	b.SetHandler(func(p any) {
		arrived = e.Now()
		got = p
	})
	e.Schedule(10*Nanosecond, func(any) { a.Send("hello") }, nil)
	e.RunAll()
	if arrived != 15*Nanosecond {
		t.Fatalf("arrived at %v, want 15ns", arrived)
	}
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
}

func TestLinkBidirectional(t *testing.T) {
	e := NewEngine()
	a, b := Connect(e, "l0", Nanosecond)
	var fromA, fromB int
	a.SetHandler(func(p any) { fromB = p.(int) })
	b.SetHandler(func(p any) { fromA = p.(int) })
	a.Send(1)
	b.Send(2)
	e.RunAll()
	if fromA != 1 || fromB != 2 {
		t.Fatalf("fromA=%d fromB=%d, want 1, 2", fromA, fromB)
	}
}

func TestLinkSendDelayed(t *testing.T) {
	e := NewEngine()
	a, b := Connect(e, "l0", 2*Nanosecond)
	var arrived []Time
	b.SetHandler(func(any) { arrived = append(arrived, e.Now()) })
	// Model serialization: 3 packets at 1ns spacing.
	for i := Time(0); i < 3; i++ {
		a.SendDelayed(i*Nanosecond, i)
	}
	e.RunAll()
	want := []Time{2 * Nanosecond, 3 * Nanosecond, 4 * Nanosecond}
	if len(arrived) != 3 {
		t.Fatalf("arrived = %v", arrived)
	}
	for i := range want {
		if arrived[i] != want[i] {
			t.Fatalf("arrived = %v, want %v", arrived, want)
		}
	}
}

func TestLinkUnconnectedPanics(t *testing.T) {
	p := &Port{name: "orphan"}
	defer func() {
		if recover() == nil {
			t.Fatal("send on unconnected port did not panic")
		}
	}()
	p.Send(nil)
}

func TestLinkNoHandlerPanics(t *testing.T) {
	e := NewEngine()
	a, _ := Connect(e, "l0", Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("send to handler-less port did not panic")
		}
	}()
	a.Send(nil)
}

func TestLinkCustomDeliver(t *testing.T) {
	e := NewEngine()
	a, _ := Connect(e, "l0", 7*Nanosecond)
	var gotDelay Time
	var gotPayload any
	a.link.SetDeliver(func(from *Port, delay Time, payload any) {
		if from != a {
			t.Errorf("deliver from wrong port %q", from.Name())
		}
		gotDelay, gotPayload = delay, payload
	})
	a.SendDelayed(3*Nanosecond, "x")
	if gotDelay != 10*Nanosecond || gotPayload != "x" {
		t.Fatalf("deliver got (%v, %v), want (10ns, x)", gotDelay, gotPayload)
	}
}

func TestSimulationDuplicateNamePanics(t *testing.T) {
	s := New()
	s.Add(named("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	s.Add(named("a"))
}

type named string

func (n named) Name() string { return string(n) }

type finisher struct {
	name string
	log  *[]string
}

func (f *finisher) Name() string { return f.name }
func (f *finisher) Finish()      { *f.log = append(*f.log, f.name) }

func TestSimulationFinishOrder(t *testing.T) {
	s := New()
	var log []string
	s.Add(&finisher{"z", &log})
	s.Add(&finisher{"a", &log})
	s.Add(named("plain")) // no Finisher: skipped
	s.Finish()
	if len(log) != 2 || log[0] != "z" || log[1] != "a" {
		t.Fatalf("finish order = %v, want [z a] (insertion order)", log)
	}
}

func TestSimulationComponentsSorted(t *testing.T) {
	s := New()
	s.Add(named("b"))
	s.Add(named("a"))
	cs := s.Components()
	if len(cs) != 2 || cs[0].Name() != "a" || cs[1].Name() != "b" {
		t.Fatalf("Components() not sorted: %v", cs)
	}
	if s.Component("a") == nil || s.Component("missing") != nil {
		t.Fatal("Component lookup broken")
	}
	// The sorted slice is cached between Adds and invalidated by Add.
	if &cs[0] != &s.Components()[0] {
		t.Error("repeated Components() call re-sorted instead of using the cache")
	}
	s.Add(named("c"))
	cs = s.Components()
	if len(cs) != 3 || cs[0].Name() != "a" || cs[2].Name() != "c" {
		t.Fatalf("Components() stale after Add: %v", cs)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs matched %d/64 draws", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const buckets, draws = 16, 160000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		hist[r.Intn(buckets)]++
	}
	for i, h := range hist {
		if h < draws/buckets*8/10 || h > draws/buckets*12/10 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", i, h, draws/buckets)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUint64nBounds(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp(10) sample mean = %v", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(17)
	out := make([]int, 10)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", out)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlated: %d/64 matches", same)
	}
}
