# sum.s — sum the integers 1..100 into r1, store at `out`.
        addi r1, r0, 0          # sum
        addi r2, r0, 1          # i
        addi r3, r0, 101        # limit
loop:   add  r1, r1, r2
        addi r2, r2, 1
        blt  r2, r3, loop
        li   r4, out
        sd   r1, 0(r4)
        halt
        .word out, 0
