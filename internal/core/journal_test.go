package core

// Resumable-sweep properties: a journal survives a torn final line, resume
// restores completed points instead of re-running them, a resumed grid is
// field-for-field identical to an uninterrupted one, and a per-point
// deadline marks a point Failed without wedging the sweep.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	cachepkg "sst/internal/cache"
	"sst/internal/sim"
)

// TestJournalTruncatedTail: a crash mid-append leaves a partial final
// line; opening with resume must keep every complete record, drop the torn
// tail, and leave the file appendable.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	full := `{"key":"a","result":1}` + "\n" + `{"key":"b","err":"boom"}` + "\n"
	if err := os.WriteFile(path, []byte(full+`{"key":"c","resu`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("journal holds %d keys after torn tail, want 2", j.Len())
	}
	if ent, ok := j.Completed("a"); !ok || ent.Err != "" || string(ent.Result) != "1" {
		t.Fatalf("entry a = %+v, %v", ent, ok)
	}
	if ent, ok := j.Completed("b"); !ok || ent.Err != "boom" {
		t.Fatalf("entry b = %+v, %v", ent, ok)
	}
	if _, ok := j.Completed("c"); ok {
		t.Fatal("torn entry c survived")
	}
	if err := j.Record("c", json.RawMessage("3"), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := full + `{"key":"c","result":3}` + "\n"; string(raw) != want {
		t.Fatalf("journal file after truncate+append:\n%q\nwant:\n%q", raw, want)
	}
}

// TestRunPointsJournaledResume kills a sweep after half its points (via
// context cancellation), then resumes: the journaled points must be
// restored without re-running, the rest must run, and the final state must
// equal an uninterrupted sweep's.
func TestRunPointsJournaledResume(t *testing.T) {
	const n = 6
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	newPIO := func(out []int) pointIO {
		return pointIO{
			key:  func(i int) string { return fmt.Sprintf("p%d", i) },
			save: func(i int) (json.RawMessage, error) { return json.Marshal(out[i]) },
			load: func(i int, raw json.RawMessage) error { return json.Unmarshal(raw, &out[i]) },
		}
	}

	// First run: single worker, cancel after 3 points complete.
	out1 := make([]int, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran1 atomic.Int64
	opts := SweepOptions{Workers: 1, Context: ctx, Journal: path}
	errs, err := runPointsJournaled(opts, n, newPIO(out1), func(_ context.Context, i int) error {
		out1[i] = 100 + i
		if ran1.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("point %d failed before cancellation: %v", i, errs[i])
		}
	}
	for i := 3; i < n; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("point %d error = %v, want skipped-by-cancellation", i, errs[i])
		}
	}

	// Resume: the three journaled points are restored, the rest run.
	out2 := make([]int, n)
	var ran2 atomic.Int64
	opts2 := SweepOptions{Workers: 1, Journal: path, Resume: true}
	if _, err := runPointsJournaled(opts2, n, newPIO(out2), func(_ context.Context, i int) error {
		out2[i] = 100 + i
		ran2.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ran2.Load(); got != n-3 {
		t.Fatalf("resume ran %d points, want %d", got, n-3)
	}
	want := make([]int, n)
	for i := range want {
		want[i] = 100 + i
	}
	if !reflect.DeepEqual(out2, want) {
		t.Fatalf("resumed results %v, want %v", out2, want)
	}
}

// TestMemTechWidthSweepJournalResume: journal a real DSE sweep with a
// torn tail injected, resume, and require the grid to be field-for-field
// identical to the uninterrupted sweep.
func TestMemTechWidthSweepJournalResume(t *testing.T) {
	apps := []string{"stream"}
	techs := []string{"ddr3-1333"}
	widths := []int{1, 2}
	ref, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dse.jsonl")
	if _, err := MemTechWidthSweep(apps, techs, widths, Small,
		SweepOptions{Workers: 2, Journal: path}); err != nil {
		t.Fatal(err)
	}
	// Tear the journal: drop the final record's tail, as if the process
	// died mid-append, leaving one complete point and one torn one.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != len(widths) {
		t.Fatalf("journal has %d lines, want %d", len(lines), len(widths))
	}
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := MemTechWidthSweep(apps, techs, widths, Small,
		SweepOptions{Workers: 2, Journal: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	// HostSeconds is host wall time — the one legitimately nondeterministic
	// field; every simulated quantity must match exactly.
	norm := func(g *DSEGrid) []DSEPoint {
		out := make([]DSEPoint, len(g.Points))
		for i, p := range g.Points {
			r := *p.Result
			r.HostSeconds = 0
			p.Result = &r
			out[i] = p
		}
		return out
	}
	if gotN, refN := norm(got), norm(ref); !reflect.DeepEqual(gotN, refN) {
		t.Fatalf("resumed grid diverged\n got %+v\nwant %+v", gotN, refN)
	}
}

// TestJournalResumeWithWarmCacheByteIdentical: the cache × journal
// interaction. A journaled sweep is torn mid-grid (crash mid-append), then
// resumed with a warm result cache: journaled points restore from the
// journal, the torn point comes back as a cache hit, and the final grid
// must render byte-identical (CSV) — and field-for-field equal — to an
// uninterrupted, uncached run.
func TestJournalResumeWithWarmCacheByteIdentical(t *testing.T) {
	apps := []string{"stream"}
	techs := []string{"ddr3-1333"}
	widths := []int{1, 2}

	// Reference: uninterrupted, uncached.
	ref, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	// Warm the cache with a full run, journaling as we go.
	c, err := NewSweepCache(64, cachepkg.LRU, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	path := filepath.Join(t.TempDir(), "dse.jsonl")
	if _, err := MemTechWidthSweep(apps, techs, widths, Small,
		SweepOptions{Workers: 2, Journal: path, Cache: c}); err != nil {
		t.Fatal(err)
	}

	// Tear the journal's final record, as if the process died mid-append.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume with the warm cache: the torn point must be served from the
	// cache, not re-simulated.
	before := c.Stats()
	got, err := MemTechWidthSweep(apps, techs, widths, Small,
		SweepOptions{Workers: 2, Journal: path, Resume: true, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("resume took %d cache hits, want exactly 1 (the torn point)", after.Hits-before.Hits)
	}
	if after.Misses != before.Misses {
		t.Errorf("resume re-simulated %d points, want 0", after.Misses-before.Misses)
	}

	var gotCSV bytes.Buffer
	if err := got.WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), refCSV.Bytes()) {
		t.Errorf("resumed+cached grid CSV differs from uninterrupted uncached run\n got %s\nwant %s",
			gotCSV.Bytes(), refCSV.Bytes())
	}
	norm := func(g *DSEGrid) []DSEPoint {
		out := make([]DSEPoint, len(g.Points))
		for i, p := range g.Points {
			r := *p.Result
			r.HostSeconds = 0
			p.Result = &r
			out[i] = p
		}
		return out
	}
	if gotN, refN := norm(got), norm(ref); !reflect.DeepEqual(gotN, refN) {
		t.Fatalf("resumed+cached grid diverged\n got %+v\nwant %+v", gotN, refN)
	}
}

// TestPointTimeoutMarksFailed: a sweep whose points cannot finish inside
// PointTimeout must mark them Failed with an interruption error instead of
// wedging the worker pool, and the sweep error must carry ErrPointFailed.
func TestPointTimeoutMarksFailed(t *testing.T) {
	g, err := MemTechWidthSweep([]string{"stream"}, []string{"ddr3-1333"}, []int{2}, Small,
		SweepOptions{Workers: 1, PointTimeout: time.Nanosecond})
	if err == nil {
		t.Fatal("timed-out sweep reported no error")
	}
	if !errors.Is(err, ErrPointFailed) {
		t.Fatalf("sweep error %v does not wrap ErrPointFailed", err)
	}
	failed := g.Failed()
	if len(failed) != 1 {
		t.Fatalf("%d failed points, want 1", len(failed))
	}
	if !errors.Is(failed[0].Err, context.DeadlineExceeded) {
		t.Fatalf("point error %v does not wrap context.DeadlineExceeded", failed[0].Err)
	}
	// The timeout must not masquerade as a SIGINT-style interruption —
	// commands map those to different exit codes.
	if errors.Is(err, sim.ErrInterrupted) || errors.Is(err, context.Canceled) {
		t.Fatalf("timeout error %v carries an interruption sentinel", err)
	}
	if failed[0].Result != nil {
		t.Fatal("timed-out point still produced a result")
	}
}
