package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as an aligned text table or CSV — the
// output format of every benchmark harness in this repository.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i.
func (t *Table) Row(i int) []string { return t.rows[i] }

// Cell returns the cell at (row, col) or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	sb.Reset()
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
			} else {
				sb.WriteString(cell + "  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// RenderCSV writes the table as CSV with the title as a comment line.
func (t *Table) RenderCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
