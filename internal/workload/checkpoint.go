package workload

// Checkpoint support: an App's whole execution state is its per-rank script
// positions plus the pending wake-up events in its event set. It registers
// itself on snapshot-enabled engines ("app:"+name) at construction; a
// restored App must be rebuilt identically and must NOT be Started — the
// restored ranks resume from their snapshotted positions.

import (
	"fmt"
	"sort"

	"sst/internal/sim"
)

// PendingOwned reports the app's pending wake-ups.
func (a *App) PendingOwned() int { return a.wake.PendingOwned() }

// SaveState writes the app and per-rank execution state.
func (a *App) SaveState(enc *sim.Encoder) {
	enc.I64(int64(a.live))
	enc.Time(a.start)
	enc.Time(a.finish)
	a.wake.Save(enc)
	enc.U64(uint64(len(a.ranks)))
	for _, r := range a.ranks {
		enc.I64(int64(r.pc))
		enc.I64(int64(r.waiting))
		enc.Bool(r.done)
		enc.Time(r.blockedSince)
		enc.Time(r.waitTime)
		srcs := make([]int, 0, len(r.arrived))
		for src, n := range r.arrived {
			if n != 0 {
				srcs = append(srcs, src)
			}
		}
		sort.Ints(srcs)
		enc.U64(uint64(len(srcs)))
		for _, src := range srcs {
			enc.I64(int64(src))
			enc.I64(int64(r.arrived[src]))
		}
	}
}

// LoadState restores the app and per-rank execution state.
func (a *App) LoadState(dec *sim.Decoder) error {
	a.live = int(dec.I64())
	a.start = dec.Time()
	a.finish = dec.Time()
	if err := a.wake.Load(dec); err != nil {
		return err
	}
	if n := dec.U64(); int(n) != len(a.ranks) {
		return fmt.Errorf("workload: snapshot of app %q has %d ranks, rebuilt app has %d", a.name, n, len(a.ranks))
	}
	for _, r := range a.ranks {
		r.pc = int(dec.I64())
		r.waiting = int(dec.I64())
		r.done = dec.Bool()
		r.blockedSince = dec.Time()
		r.waitTime = dec.Time()
		clear(r.arrived)
		n := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			src := int(dec.I64())
			r.arrived[src] = int(dec.I64())
		}
	}
	return dec.Err()
}
