// Command sst-dse runs the design-space exploration sweeps of the SST
// studies — memory technology × issue width with power and cost axes — and
// prints the Fig. 10/11/12 tables.
//
// Usage:
//
//	sst-dse [-apps hpccg,lulesh] [-techs ddr2-800,ddr3-1333,gddr5-4000]
//	        [-widths 1,2,4,8] [-scale full|small] [-table all|fig10|fig11|fig12]
//	        [-csv] [-j N]
//
// The sweep's design points are independent simulations; -j sets how many
// run concurrently (default: GOMAXPROCS). Tables are identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sst/internal/core"
	"sst/internal/stats"
)

func main() {
	var (
		appsFlag   = flag.String("apps", "hpccg,lulesh", "comma-separated miniapps")
		techsFlag  = flag.String("techs", "ddr2-800,ddr3-1333,gddr5-4000", "memory technologies")
		widthsFlag = flag.String("widths", "1,2,4,8", "issue widths")
		scaleFlag  = flag.String("scale", "full", "problem scale: full or small")
		tableFlag  = flag.String("table", "all", "which table: all, fig10, fig11, fig12")
		csvFlag    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jFlag      = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*appsFlag, *techsFlag, *widthsFlag, *scaleFlag, *tableFlag, *csvFlag, *jFlag); err != nil {
		fmt.Fprintln(os.Stderr, "sst-dse:", err)
		os.Exit(1)
	}
}

func run(appsFlag, techsFlag, widthsFlag, scaleFlag, tableFlag string, asCSV bool, workers int) error {
	core.SetSweepWorkers(workers)
	apps := strings.Split(appsFlag, ",")
	techs := strings.Split(techsFlag, ",")
	var widths []int
	for _, w := range strings.Split(widthsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || v <= 0 {
			return fmt.Errorf("bad width %q", w)
		}
		widths = append(widths, v)
	}
	scale := core.Full
	switch scaleFlag {
	case "full":
	case "small":
		scale = core.Small
	default:
		return fmt.Errorf("bad scale %q", scaleFlag)
	}

	grid, err := core.MemTechWidthSweep(apps, techs, widths, scale)
	if err != nil {
		return err
	}
	emit := func(t *stats.Table) {
		if asCSV {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	baseline := techs[0]
	for _, t := range techs {
		if strings.HasPrefix(t, "ddr3") {
			baseline = t
			break
		}
	}
	switch tableFlag {
	case "all":
		emit(core.Fig10Table(grid, apps, techs, widths, baseline))
		emit(core.Fig11Table(grid, apps, techs, widths))
		emit(core.Fig12Table(grid, apps, techs[len(techs)-1], widths))
	case "fig10":
		emit(core.Fig10Table(grid, apps, techs, widths, baseline))
	case "fig11":
		emit(core.Fig11Table(grid, apps, techs, widths))
	case "fig12":
		emit(core.Fig12Table(grid, apps, techs[len(techs)-1], widths))
	default:
		return fmt.Errorf("bad table %q", tableFlag)
	}
	return nil
}
