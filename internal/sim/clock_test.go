package sim

import "testing"

func TestClockTicks(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 1*GHz)
	var cycles []Cycle
	c.Register(func(n Cycle) bool {
		cycles = append(cycles, n)
		return n < 4 // run cycles 0..4, then deregister
	})
	e.RunAll()
	if len(cycles) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(cycles), cycles)
	}
	for i, n := range cycles {
		if n != Cycle(i) {
			t.Fatalf("tick %d has cycle %d", i, n)
		}
	}
	if e.Now() != 4*Nanosecond {
		t.Errorf("Now = %v, want 4ns", e.Now())
	}
}

func TestClockSharedHandlersOrder(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 2*GHz)
	var order []string
	c.Register(func(n Cycle) bool {
		order = append(order, "a")
		return n < 1
	})
	c.Register(func(n Cycle) bool {
		order = append(order, "b")
		return n < 1
	})
	e.RunAll()
	want := []string{"a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClockReregisterAfterStall(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 1*GHz)
	var resumed Cycle
	// Tick once at cycle 0, then stall for 10ns, then resume.
	c.Register(func(n Cycle) bool {
		e.Schedule(10*Nanosecond, func(any) {
			c.Register(func(n Cycle) bool {
				if resumed == 0 {
					resumed = n
				}
				return false
			})
		}, nil)
		return false
	})
	e.RunAll()
	// Stall began at t=0 tick; wake event at t=10ns, so the resume tick
	// is cycle 10 or 11 depending on boundary alignment (10ns == cycle 10
	// boundary exactly, and the wake event runs at link priority after
	// the clock edge, so the next available tick is cycle 11... unless
	// the clock is dormant and re-arms at the same timestamp).
	if resumed != 10 && resumed != 11 {
		t.Fatalf("resumed at cycle %d, want 10 or 11", resumed)
	}
	// The clock must not have ticked during the stall window: engine
	// should have handled only a handful of events, not 10+.
	if e.Handled() > 6 {
		t.Errorf("engine handled %d events; clock appears to have spun during stall", e.Handled())
	}
}

func TestClockDormantCostsNothing(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 1*GHz)
	c.Register(func(n Cycle) bool { return false }) // one tick, then dormant
	e.Schedule(1*Millisecond, func(any) {}, nil)
	handled := e.RunAll()
	// 1 tick + 1 event; a spinning clock would be ~1e6 events.
	if handled != 2 {
		t.Fatalf("handled %d events, want 2", handled)
	}
	_ = c
}

func TestClockRegisterDuringTick(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 1*GHz)
	var second []Cycle
	c.Register(func(n Cycle) bool {
		if n == 0 {
			c.Register(func(m Cycle) bool {
				second = append(second, m)
				return m < 2
			})
		}
		return n < 2
	})
	e.RunAll()
	if len(second) == 0 || second[0] != 1 {
		t.Fatalf("handler registered during tick first ran at %v, want cycle 1", second)
	}
}

func TestClockNonIntegralPeriodNoDrift(t *testing.T) {
	e := NewEngine()
	c := NewClock(e, 3*GHz) // 333.33ps period
	var last Time
	var count int
	c.Register(func(n Cycle) bool {
		last = e.Now()
		count++
		return n < 2_999 // 3000 ticks
	})
	e.RunAll()
	if count != 3000 {
		t.Fatalf("count = %d, want 3000", count)
	}
	// Cycle 2999 at 3GHz = 2999 * 1000/3 ps = 999666.33 -> 999666 ps.
	if last != 999_666 {
		t.Fatalf("cycle 2999 at %v ps, want 999666 (exact, no drift)", uint64(last))
	}
}

func TestClockZeroFreqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(NewEngine(), 0)
}

func TestSimulationSharedClocks(t *testing.T) {
	s := New()
	c1 := s.Clock(2 * GHz)
	c2 := s.Clock(2 * GHz)
	if c1 != c2 {
		t.Fatal("same-frequency clocks not shared")
	}
	if s.Clock(1*GHz) == c1 {
		t.Fatal("different-frequency clocks aliased")
	}
}

func BenchmarkClockTick(b *testing.B) {
	e := NewEngine()
	c := NewClock(e, 1*GHz)
	n := 0
	c.Register(func(Cycle) bool {
		n++
		return n < b.N
	})
	b.ResetTimer()
	b.ReportAllocs()
	e.RunAll()
}

func BenchmarkClockTick8Handlers(b *testing.B) {
	e := NewEngine()
	c := NewClock(e, 1*GHz)
	n := 0
	for i := 0; i < 8; i++ {
		c.Register(func(Cycle) bool {
			n++
			return n < b.N
		})
	}
	b.ResetTimer()
	b.ReportAllocs()
	e.RunAll()
}
