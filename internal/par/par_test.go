package par

import (
	"fmt"
	"testing"

	"sst/internal/sim"
)

// pinger is a test component: it responds to each incoming integer with
// value+1 after a fixed think time, recording (time, value) pairs, until
// the value reaches its limit.
type pinger struct {
	name  string
	port  *sim.Port
	think sim.Time
	limit int
	log   []pingRec
}

type pingRec struct {
	t sim.Time
	v int
}

func newPinger(name string, port *sim.Port, think sim.Time, limit int) *pinger {
	p := &pinger{name: name, port: port, think: think, limit: limit}
	port.SetHandler(p.recv)
	return p
}

func (p *pinger) Name() string { return p.name }

func (p *pinger) recv(payload any) {
	v := payload.(int)
	// Record arrival against the engine time of whichever rank runs us;
	// links guarantee the timestamp.
	p.log = append(p.log, pingRec{v: v})
	if v >= p.limit {
		return
	}
	p.port.SendDelayed(p.think, v+1)
}

// buildRing constructs a ring of n pingers spread round-robin over the
// runner's ranks, kicks node 0, and returns the pingers.
func buildRing(t *testing.T, r *Runner, n, limit int, linkLat sim.Time) []*pinger {
	t.Helper()
	// Ring links: node i -> node i+1.
	type half struct{ a, b *sim.Port }
	halves := make([]half, n)
	for i := 0; i < n; i++ {
		ra := i % r.NumRanks()
		rb := (i + 1) % n % r.NumRanks()
		a, b, err := r.Connect(fmt.Sprintf("ring%d", i), linkLat, ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		halves[i] = half{a, b}
	}
	// forwarder component: receives on the inbound port, sends on the
	// outbound port.
	pingers := make([]*pinger, n)
	for i := 0; i < n; i++ {
		in := halves[(i-1+n)%n].b
		out := halves[i].a
		fp := &forwardPinger{name: fmt.Sprintf("n%d", i), in: in, out: out, think: sim.Nanosecond, limit: limit}
		in.SetHandler(fp.recv)
		pingers[i] = nil
		r.Rank(i % r.NumRanks()).Add(fp)
		forwarders[fp.name] = fp
	}
	return pingers
}

// forwardPinger passes a counter around a ring.
type forwardPinger struct {
	name  string
	in    *sim.Port
	out   *sim.Port
	think sim.Time
	limit int
	log   []pingRec
}

func (f *forwardPinger) Name() string { return f.name }

func (f *forwardPinger) recv(payload any) {
	v := payload.(int)
	f.log = append(f.log, pingRec{v: v})
	if v >= f.limit {
		return
	}
	f.out.SendDelayed(f.think, v+1)
}

var forwarders map[string]*forwardPinger

// runRing runs a ring over the given rank count and returns per-node logs.
func runRing(t *testing.T, nranks, nodes, limit int) map[string][]pingRec {
	t.Helper()
	forwarders = map[string]*forwardPinger{}
	r, err := NewRunner(nranks)
	if err != nil {
		t.Fatal(err)
	}
	buildRing(t, r, nodes, limit, 10*sim.Nanosecond)
	// Kick: inject value 0 into node 0's inbound port via its upstream
	// link — send from node n-1's out port would double-count; instead
	// schedule a direct delivery.
	first := forwarders["n0"]
	r.Rank(0).Engine().Schedule(0, func(any) { first.recv(0) }, nil)
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	out := map[string][]pingRec{}
	for name, f := range forwarders {
		out[name] = append([]pingRec(nil), f.log...)
	}
	return out
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(0); err == nil {
		t.Error("zero ranks accepted")
	}
	r, _ := NewRunner(2)
	if _, _, err := r.Connect("x", 0, 0, 1); err == nil {
		t.Error("zero-latency cross link accepted")
	}
	if _, _, err := r.Connect("x", sim.Nanosecond, 0, 5); err == nil {
		t.Error("invalid rank accepted")
	}
	if _, _, err := r.Connect("ok", 0, 1, 1); err != nil {
		t.Errorf("same-rank zero-latency link rejected: %v", err)
	}
	if r.Lookahead() != 0 {
		t.Error("lookahead nonzero with no cross links")
	}
	if _, _, err := r.Connect("c", 5*sim.Nanosecond, 0, 1); err != nil {
		t.Fatal(err)
	}
	if r.Lookahead() != 5*sim.Nanosecond {
		t.Errorf("lookahead = %v", r.Lookahead())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := runRing(t, 1, 8, 200)
	for _, nranks := range []int{2, 4, 8} {
		par := runRing(t, nranks, 8, 200)
		if len(par) != len(seq) {
			t.Fatalf("nranks=%d: node count mismatch", nranks)
		}
		for name, want := range seq {
			got := par[name]
			if len(got) != len(want) {
				t.Fatalf("nranks=%d node %s: %d records vs %d", nranks, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nranks=%d node %s record %d: %+v vs %+v", nranks, name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParallelDeterminism(t *testing.T) {
	a := runRing(t, 4, 12, 500)
	b := runRing(t, 4, 12, 500)
	for name := range a {
		if len(a[name]) != len(b[name]) {
			t.Fatalf("node %s: nondeterministic record count", name)
		}
		for i := range a[name] {
			if a[name][i] != b[name][i] {
				t.Fatalf("node %s record %d differs between runs", name, i)
			}
		}
	}
}

func TestRunUntil(t *testing.T) {
	forwarders = map[string]*forwardPinger{}
	r, _ := NewRunner(2)
	buildRing(t, r, 4, 1_000_000, 10*sim.Nanosecond)
	first := forwarders["n0"]
	r.Rank(0).Engine().Schedule(0, func(any) { first.recv(0) }, nil)
	if _, err := r.Run(1 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if r.Now() < 1*sim.Microsecond {
		t.Fatalf("Now = %v, want >= 1us", r.Now())
	}
	// The ring must not have finished: each hop takes 11ns, the limit is
	// huge.
	total := 0
	for _, f := range forwarders {
		total += len(f.log)
	}
	if total == 0 || total > 200 {
		t.Fatalf("records after 1us = %d, want bounded progress", total)
	}
}

func TestFastForwardSparseEvents(t *testing.T) {
	// Two ranks with a cross link (tiny lookahead) but one far-future
	// event: the runner must not crawl 1ns windows to reach it.
	r, _ := NewRunner(2)
	a, b, err := r.Connect("x", sim.Nanosecond, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(any) {})
	b.SetHandler(func(any) {})
	fired := false
	r.Rank(1).Engine().Schedule(10*sim.Millisecond, func(any) { fired = true }, nil)
	n, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || n != 1 {
		t.Fatalf("fired=%v handled=%d", fired, n)
	}
}

func TestIndependentRanksNoCrossLinks(t *testing.T) {
	r, _ := NewRunner(4)
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		eng := r.Rank(i).Engine()
		var h sim.Handler
		h = func(any) {
			counts[i]++
			if counts[i] < 1000 {
				eng.Schedule(sim.Nanosecond, h, nil)
			}
		}
		eng.Schedule(0, h, nil)
	}
	if _, err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1000 {
			t.Fatalf("rank %d ran %d events", i, c)
		}
	}
}

func TestFinishPropagates(t *testing.T) {
	r, _ := NewRunner(2)
	var log []string
	r.Rank(0).Add(&finComp{"a", &log})
	r.Rank(1).Add(&finComp{"b", &log})
	r.Finish()
	if len(log) != 2 {
		t.Fatalf("finish log = %v", log)
	}
}

type finComp struct {
	name string
	log  *[]string
}

func (f *finComp) Name() string { return f.name }
func (f *finComp) Finish()      { *f.log = append(*f.log, f.name) }

// heavyRank builds self-contained busy work on each rank plus cross-rank
// chatter, for the speedup benchmark.
func buildHeavy(b *testing.B, r *Runner, eventsPerRank int) {
	nr := r.NumRanks()
	for i := 0; i < nr; i++ {
		a, bp, err := r.Connect(fmt.Sprintf("c%d", i), 2*sim.Microsecond, i, (i+1)%nr)
		if err != nil && nr > 1 {
			b.Fatal(err)
		}
		if err == nil {
			a.SetHandler(func(any) {})
			bp.SetHandler(func(any) {})
		}
	}
	for i := 0; i < nr; i++ {
		eng := r.Rank(i).Engine()
		n := 0
		sink := 0.0
		var h sim.Handler
		h = func(any) {
			// Emulate model computation.
			for k := 0; k < 50; k++ {
				sink += float64(k) * 1.000001
			}
			n++
			if n < eventsPerRank {
				eng.Schedule(sim.Nanosecond, h, nil)
			}
		}
		eng.Schedule(0, h, nil)
	}
}

func BenchmarkParallelRanks1(b *testing.B) { benchRanks(b, 1) }
func BenchmarkParallelRanks2(b *testing.B) { benchRanks(b, 2) }
func BenchmarkParallelRanks4(b *testing.B) { benchRanks(b, 4) }
func BenchmarkParallelRanks8(b *testing.B) { benchRanks(b, 8) }

func benchRanks(b *testing.B, nranks int) {
	// Fixed total work, split across ranks: wall time should shrink with
	// rank count.
	const totalEvents = 80_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(nranks)
		if err != nil {
			b.Fatal(err)
		}
		buildHeavy(b, r, totalEvents/nranks)
		if _, err := r.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
