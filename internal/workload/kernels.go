// Package workload provides the miniapp proxies and communication-pattern
// skeleton applications that drive gosst's timing models: kernel-driven
// instruction/address streams for node studies (HPCCG-, Lulesh-, stencil-,
// STREAM- and GUPS-like) and per-rank message scripts for network studies
// (CTH-, SAGE-, Charon- and xNOBEL-like profiles).
//
// The kernels walk real data-structure address patterns (27-point stencil
// neighborhoods, multi-array sweeps, random tables) so cache and DRAM
// row-buffer behavior is realistic, while floating-point work is emitted as
// accumulator chains whose depth controls exploitable ILP.
package workload

import (
	"fmt"

	"sst/internal/frontend"
	"sst/internal/sim"
)

// Kernel describes a runnable node workload.
type Kernel struct {
	Name string
	// Flops and Bytes estimate per-run totals for intensity reporting.
	Flops uint64
	Bytes uint64
	// Run emits the operation stream.
	Run func(*frontend.Emitter)
}

// Stream builds a KernelStream for the kernel.
func (k *Kernel) Stream() *frontend.KernelStream {
	return frontend.NewKernelStream(k.Run)
}

// StreamPool is Stream drawing batch buffers from pool (nil = Stream).
func (k *Kernel) StreamPool(pool *frontend.OpPool) *frontend.KernelStream {
	return frontend.NewKernelStreamPool(k.Run, pool)
}

// Intensity returns arithmetic intensity, flops per byte.
func (k *Kernel) Intensity() float64 {
	if k.Bytes == 0 {
		return 0
	}
	return float64(k.Flops) / float64(k.Bytes)
}

// flopChain emits n FP ops distributed over `accs` accumulator registers:
// each op depends on the previous op targeting the same accumulator, so
// `accs` bounds the exploitable FP ILP.
func flopChain(e *frontend.Emitter, n, accs int) bool {
	if accs < 1 {
		accs = 1
	}
	if accs > 24 {
		accs = 24
	}
	for i := 0; i < n; i++ {
		r := uint8(1 + i%accs)
		if !e.Emit(frontend.Op{Class: frontend.ClassFloat, Dst: r, Src1: r}) {
			return false
		}
	}
	return true
}

// Memory layout base addresses keep each kernel's arrays on distinct,
// page-aligned regions.
const (
	baseMatrix = 0x0100_0000
	baseX      = 0x2000_0000
	baseY      = 0x2800_0000
	baseP      = 0x3000_0000
	baseQ      = 0x3800_0000
	baseR      = 0x4000_0000
	baseTable  = 0x5000_0000
)

// HPCCG builds an unpreconditioned conjugate-gradient proxy on an n×n×n
// 27-point stencil grid, the Mantevo HPCCG pattern: each iteration is one
// sparse matrix-vector product, two dot products and three axpys. The SpMV
// gathers x at real 27-point neighbor offsets, so spatial locality (and
// thus cache behavior) matches the genuine sparse operator.
func HPCCG(n, iters int) *Kernel {
	rows := uint64(n) * uint64(n) * uint64(n)
	// SpMV: 27 matrix loads + 27 x gathers + 27 FMAs per row, plus the
	// vector ops: 2 dots (2 loads, 2 flops each) + 3 axpys (2 loads, 1
	// store, 2 flops each).
	flops := uint64(iters) * rows * (27*2 + 2*2 + 3*2)
	bytes := uint64(iters) * rows * (27*8 + 27*8 + 8 + (2*2+3*3)*8)
	run := func(e *frontend.Emitter) {
		nn := uint64(n)
		for it := 0; it < iters; it++ {
			// SpMV: q = A*p.
			var row uint64
			for z := uint64(0); z < nn; z++ {
				for y := uint64(0); y < nn; y++ {
					for x := uint64(0); x < nn; x++ {
						// Matrix values stream sequentially.
						for j := uint64(0); j < 27; j++ {
							if !e.Load(baseMatrix + (row*27+j)*8) {
								return
							}
						}
						// Gather x at neighbor offsets.
						for dz := -1; dz <= 1; dz++ {
							for dy := -1; dy <= 1; dy++ {
								for dx := -1; dx <= 1; dx++ {
									nx := clampU(x, dx, nn)
									ny := clampU(y, dy, nn)
									nz := clampU(z, dz, nn)
									idx := (nz*nn+ny)*nn + nx
									if !e.Load(baseP + idx*8) {
										return
									}
								}
							}
						}
						if !flopChain(e, 54, 8) {
							return
						}
						if !e.Store(baseQ + row*8) {
							return
						}
						row++
					}
				}
			}
			// Two dot products: p·q and r·r.
			for i := uint64(0); i < rows; i++ {
				if !e.Load(baseP+i*8) || !e.Load(baseQ+i*8) || !flopChain(e, 2, 8) {
					return
				}
			}
			for i := uint64(0); i < rows; i++ {
				if !e.Load(baseR+i*8) || !flopChain(e, 2, 8) {
					return
				}
			}
			// Three axpys: x += a·p; r -= a·q; p = r + b·p.
			for _, pair := range [][2]uint64{{baseX, baseP}, {baseR, baseQ}, {baseP, baseR}} {
				for i := uint64(0); i < rows; i++ {
					if !e.Load(pair[0]+i*8) || !e.Load(pair[1]+i*8) {
						return
					}
					if !flopChain(e, 2, 8) {
						return
					}
					if !e.Store(pair[0] + i*8) {
						return
					}
				}
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("hpccg-n%d-i%d", n, iters),
		Flops: flops, Bytes: bytes, Run: run,
	}
}

func clampU(v uint64, d int, n uint64) uint64 {
	r := int64(v) + int64(d)
	if r < 0 {
		return 0
	}
	if r >= int64(n) {
		return n - 1
	}
	return uint64(r)
}

// Lulesh builds a hydro-proxy: per "element sweep" it streams several large
// arrays (nodal coordinates, velocities, forces) with a high flop count per
// element — bandwidth-hungry with more compute than a stencil, the Lulesh
// signature.
func Lulesh(elems, iters int) *Kernel {
	n := uint64(elems)
	// Per element: 8 coordinate loads, 8 velocity loads, ~45 flops,
	// 4 stores; then a stress sweep: 3 loads, 15 flops, 1 store.
	flops := uint64(iters) * n * (45 + 15)
	bytes := uint64(iters) * n * (8 + 8 + 4 + 3 + 1) * 8
	run := func(e *frontend.Emitter) {
		for it := 0; it < iters; it++ {
			for i := uint64(0); i < n; i++ {
				for j := uint64(0); j < 8; j++ {
					if !e.Load(baseX + (i*8+j)*8) {
						return
					}
				}
				for j := uint64(0); j < 8; j++ {
					if !e.Load(baseY + (i*8+j)*8) {
						return
					}
				}
				if !flopChain(e, 45, 12) {
					return
				}
				for j := uint64(0); j < 4; j++ {
					if !e.Store(baseQ + (i*4+j)*8) {
						return
					}
				}
			}
			for i := uint64(0); i < n; i++ {
				if !e.Load(baseQ+i*32) || !e.Load(baseP+i*8) || !e.Load(baseR+i*8) {
					return
				}
				if !flopChain(e, 15, 12) {
					return
				}
				if !e.Store(baseR + i*8) {
					return
				}
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("lulesh-e%d-i%d", elems, iters),
		Flops: flops, Bytes: bytes, Run: run,
	}
}

// Stencil builds a miniGhost-like 7-point stencil sweep over an n³ grid.
func Stencil(n, iters int) *Kernel {
	nn := uint64(n)
	cells := nn * nn * nn
	flops := uint64(iters) * cells * 8
	bytes := uint64(iters) * cells * 8 * 8
	run := func(e *frontend.Emitter) {
		plane := nn * nn
		for it := 0; it < iters; it++ {
			src, dst := uint64(baseX), uint64(baseY)
			if it%2 == 1 {
				src, dst = dst, src
			}
			for z := uint64(1); z+1 < nn; z++ {
				for y := uint64(1); y+1 < nn; y++ {
					for x := uint64(1); x+1 < nn; x++ {
						c := (z*nn+y)*nn + x
						for _, off := range []uint64{c, c - 1, c + 1, c - nn, c + nn, c - plane, c + plane} {
							if !e.Load(src + off*8) {
								return
							}
						}
						if !flopChain(e, 8, 8) {
							return
						}
						if !e.Store(dst + c*8) {
							return
						}
					}
				}
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("stencil-n%d-i%d", n, iters),
		Flops: flops, Bytes: bytes, Run: run,
	}
}

// STREAMTriad builds the classic bandwidth probe: a[i] = b[i] + s*c[i].
func STREAMTriad(elems, iters int) *Kernel {
	n := uint64(elems)
	run := func(e *frontend.Emitter) {
		for it := 0; it < iters; it++ {
			for i := uint64(0); i < n; i++ {
				if !e.Load(baseX+i*8) || !e.Load(baseY+i*8) {
					return
				}
				if !flopChain(e, 2, 16) {
					return
				}
				if !e.Store(baseQ + i*8) {
					return
				}
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("stream-e%d-i%d", elems, iters),
		Flops: uint64(iters) * n * 2, Bytes: uint64(iters) * n * 24, Run: run,
	}
}

// GUPS builds the random-access probe: dependent loads and updates at
// pseudo-random table locations. Each update's address depends on the
// previous load (pointer-chase semantics), so latency cannot be hidden by
// a single thread — the workload PIM-style multithreading wins on.
func GUPS(tableBytes uint64, updates int, seed uint64) *Kernel {
	run := func(e *frontend.Emitter) {
		rng := sim.NewRNG(seed)
		mask := tableBytes/8 - 1
		for i := 0; i < updates; i++ {
			idx := rng.Uint64() & mask
			// Dependent chain: the load writes r1, the update reads
			// it, the store consumes the update.
			if !e.Emit(frontend.Op{Class: frontend.ClassLoad, Addr: baseTable + idx*8, Size: 8, Dst: 1, Src1: 1}) {
				return
			}
			if !e.Emit(frontend.Op{Class: frontend.ClassInt, Dst: 1, Src1: 1}) {
				return
			}
			if !e.Emit(frontend.Op{Class: frontend.ClassStore, Addr: baseTable + idx*8, Size: 8, Src1: 1}) {
				return
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("gups-%dMB-u%d", tableBytes>>20, updates),
		Flops: 0, Bytes: uint64(updates) * 16, Run: run,
	}
}

// FEA builds the assembly-phase proxy used by the memory-speed sensitivity
// study: heavy floating-point element-operator computation over a small,
// cache-resident working set. Its runtime should be insensitive to DRAM
// speed — the Fig. 3 contrast with the solver phase.
func FEA(elems, iters int) *Kernel {
	n := uint64(elems)
	const wsBytes = 16 << 10 // element scratch: fits in L1/L2
	run := func(e *frontend.Emitter) {
		for it := 0; it < iters; it++ {
			for i := uint64(0); i < n; i++ {
				// Touch the small scratch area...
				for j := uint64(0); j < 16; j++ {
					off := (i*8 + j*64) % wsBytes
					if !e.Load(baseX + off) {
						return
					}
				}
				// ...and grind on it: diffusion matrix + Jacobian.
				if !flopChain(e, 180, 10) {
					return
				}
				for j := uint64(0); j < 4; j++ {
					if !e.Store(baseX + (i*8+j*64)%wsBytes) {
						return
					}
				}
			}
		}
	}
	return &Kernel{
		Name:  fmt.Sprintf("fea-e%d-i%d", elems, iters),
		Flops: uint64(iters) * n * 180, Bytes: uint64(iters) * n * 20 * 8, Run: run,
	}
}
