package mem

import (
	"testing"

	"sst/internal/sim"
	"sst/internal/stats"
)

// testCfg returns a small cache config: 1 KiB, 2-way, 64B lines (8 sets).
func testCfg(name string) CacheConfig {
	return CacheConfig{
		Name:       name,
		SizeBytes:  1 << 10,
		LineBytes:  64,
		Assoc:      2,
		HitLatency: 1 * sim.Nanosecond,
		MSHRs:      4,
		WriteBack:  true,
		Repl:       LRU,
	}
}

func newCache(t testing.TB, cfg CacheConfig, latency sim.Time) (*sim.Engine, *Cache, *SimpleMemory) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	lower := NewSimpleMemory(e, "mem", latency, 0, reg.Scope("mem"))
	c, err := NewCache(e, cfg, lower, reg.Scope(cfg.Name))
	if err != nil {
		t.Fatal(err)
	}
	return e, c, lower
}

func TestCacheConfigValidate(t *testing.T) {
	bad := testCfg("c")
	bad.LineBytes = 48
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	bad = testCfg("c")
	bad.SizeBytes = 1000
	if err := bad.Validate(); err == nil {
		t.Error("indivisible size accepted")
	}
	bad = testCfg("c")
	bad.Assoc = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero associativity accepted")
	}
	bad = testCfg("c")
	bad.SizeBytes = 3 * 64 * 2 // 3 sets: not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if _, err := NewCache(sim.NewEngine(), testCfg("c"), nil, nil); err == nil {
		t.Error("nil lower device accepted")
	}
}

func TestCacheHitMissTiming(t *testing.T) {
	e, c, _ := newCache(t, testCfg("l1"), 100*sim.Nanosecond)
	var missLat, hitLat sim.Time
	start := e.Now()
	c.Access(Read, 0x1000, 8, func() { missLat = e.Now() - start })
	e.RunAll()
	start = e.Now()
	c.Access(Read, 0x1000, 8, func() { hitLat = e.Now() - start })
	e.RunAll()
	if hitLat != c.cfg.HitLatency {
		t.Errorf("hit latency = %v, want %v", hitLat, c.cfg.HitLatency)
	}
	// Miss: lookup + memory latency (plus scheduling) > 100ns.
	if missLat < 100*sim.Nanosecond || missLat > 110*sim.Nanosecond {
		t.Errorf("miss latency = %v, want ~101ns", missLat)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	e, c, _ := newCache(t, testCfg("l1"), 50*sim.Nanosecond)
	// 1 KiB working set == cache size: after warmup all hits.
	warm := func() {
		for a := uint64(0); a < 1024; a += 64 {
			c.Access(Read, a, 8, nil)
		}
		e.RunAll()
	}
	warm()
	h0 := c.Hits()
	warm()
	if c.Hits()-h0 != 16 {
		t.Errorf("second pass hits = %d, want 16", c.Hits()-h0)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", c.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	e, c, _ := newCache(t, testCfg("l1"), 10*sim.Nanosecond)
	// Three lines mapping to set 0 (stride = sets*line = 8*64 = 512B),
	// 2-way: A, B, touch A, then C evicts B (LRU), so A still hits.
	const stride = 512
	acc := func(a uint64) {
		c.Access(Read, a, 8, nil)
		e.RunAll()
	}
	acc(0 * stride) // A miss
	acc(1 * stride) // B miss
	acc(0 * stride) // A hit (refreshes LRU)
	acc(2 * stride) // C miss, evicts B
	h := c.Hits()
	acc(0 * stride) // A must still be resident
	if c.Hits() != h+1 {
		t.Error("LRU evicted the recently used line")
	}
	m := c.Misses()
	acc(1 * stride) // B was evicted: miss
	if c.Misses() != m+1 {
		t.Error("expected B to have been evicted")
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	cfg := testCfg("l1")
	cfg.Repl = FIFO
	e, c, _ := newCache(t, cfg, 10*sim.Nanosecond)
	const stride = 512
	acc := func(a uint64) {
		c.Access(Read, a, 8, nil)
		e.RunAll()
	}
	acc(0 * stride) // A (oldest)
	acc(1 * stride) // B
	acc(0 * stride) // A hit; FIFO ignores recency
	acc(2 * stride) // C evicts A (first in)
	m := c.Misses()
	acc(0 * stride) // A gone under FIFO
	if c.Misses() != m+1 {
		t.Error("FIFO did not evict the first-filled line")
	}
}

func TestCacheRandomReplacementWorks(t *testing.T) {
	cfg := testCfg("l1")
	cfg.Repl = RandomRepl
	e, c, _ := newCache(t, cfg, 10*sim.Nanosecond)
	for i := 0; i < 100; i++ {
		c.Access(Read, uint64(i)*512, 8, nil)
		e.RunAll()
	}
	valid, _ := c.Contents()
	if valid == 0 || c.evictions.Count() == 0 {
		t.Error("random replacement produced no evictions or no residents")
	}
}

func TestCacheWriteBack(t *testing.T) {
	e, c, lower := newCache(t, testCfg("l1"), 10*sim.Nanosecond)
	// Dirty a line, then evict it with two conflicting fills.
	c.Access(Write, 0, 8, nil)
	e.RunAll()
	if lower.writes.Count() != 0 {
		t.Fatalf("write-back cache wrote through: %d", lower.writes.Count())
	}
	_, dirty := c.Contents()
	if dirty != 1 {
		t.Fatalf("dirty lines = %d, want 1", dirty)
	}
	c.Access(Read, 512, 8, nil)
	c.Access(Read, 1024, 8, nil) // evicts the dirty line
	e.RunAll()
	if lower.writes.Count() != 1 {
		t.Errorf("writebacks to memory = %d, want 1", lower.writes.Count())
	}
	if c.writebacks.Count() != 1 {
		t.Errorf("writeback stat = %d, want 1", c.writebacks.Count())
	}
}

func TestCacheWriteThrough(t *testing.T) {
	cfg := testCfg("l1")
	cfg.WriteBack = false
	e, c, lower := newCache(t, cfg, 10*sim.Nanosecond)
	// Write miss: no allocate, posted write below.
	c.Access(Write, 0, 8, nil)
	e.RunAll()
	if lower.writes.Count() != 1 {
		t.Fatalf("write-through miss writes = %d, want 1", lower.writes.Count())
	}
	valid, _ := c.Contents()
	if valid != 0 {
		t.Fatal("write-through no-allocate cache allocated on write miss")
	}
	// Fill via read, then write hit: line stays, write goes through.
	c.Access(Read, 0, 8, nil)
	e.RunAll()
	c.Access(Write, 0, 8, nil)
	e.RunAll()
	if lower.writes.Count() != 2 {
		t.Fatalf("write-through hit writes = %d, want 2", lower.writes.Count())
	}
	_, dirty := c.Contents()
	if dirty != 0 {
		t.Fatal("write-through cache holds dirty lines")
	}
}

func TestCacheMSHRCoalescing(t *testing.T) {
	e, c, lower := newCache(t, testCfg("l1"), 100*sim.Nanosecond)
	done := 0
	// Two accesses to the same line while the fill is outstanding: one
	// memory read only.
	c.Access(Read, 0x40, 8, func() { done++ })
	c.Access(Read, 0x48, 8, func() { done++ })
	e.RunAll()
	if done != 2 {
		t.Fatalf("completions = %d, want 2", done)
	}
	if lower.reads.Count() != 1 {
		t.Errorf("memory reads = %d, want 1 (coalesced)", lower.reads.Count())
	}
	if c.secondaryMisses.Count() != 1 {
		t.Errorf("secondary misses = %d, want 1", c.secondaryMisses.Count())
	}
}

func TestCacheMSHRStall(t *testing.T) {
	cfg := testCfg("l1")
	cfg.MSHRs = 2
	e, c, _ := newCache(t, cfg, 100*sim.Nanosecond)
	done := 0
	for i := 0; i < 6; i++ {
		c.Access(Read, uint64(i)*4096, 8, func() { done++ })
	}
	e.RunAll()
	if done != 6 {
		t.Fatalf("completions = %d, want 6 (stalled accesses must complete)", done)
	}
	if c.mshrStalls.Count() == 0 {
		t.Error("no MSHR stalls recorded with 6 misses over 2 MSHRs")
	}
	if c.Misses() != 6 {
		t.Errorf("misses = %d, want 6 (no double counting through stalls)", c.Misses())
	}
}

func TestCachePrefetchNextLine(t *testing.T) {
	cfg := testCfg("l1")
	cfg.PrefetchNextLine = true
	cfg.SizeBytes = 8 << 10
	e, c, _ := newCache(t, cfg, 100*sim.Nanosecond)
	// Sequential stream with gaps between issues so prefetches land.
	var addrs []uint64
	for a := uint64(0); a < 4096; a += 64 {
		addrs = append(addrs, a)
	}
	i := 0
	var next func()
	next = func() {
		if i >= len(addrs) {
			return
		}
		a := addrs[i]
		i++
		c.Access(Read, a, 8, func() {
			e.Schedule(200*sim.Nanosecond, func(any) { next() }, nil)
		})
	}
	next()
	e.RunAll()
	if c.prefetches.Count() == 0 {
		t.Fatal("no prefetches issued")
	}
	// With next-line prefetch and slack, most of the stream should hit.
	if c.HitRate() < 0.5 {
		t.Errorf("hit rate with prefetch = %.2f, want > 0.5", c.HitRate())
	}
}

func TestCacheMultiLineAccess(t *testing.T) {
	e, c, lower := newCache(t, testCfg("l1"), 10*sim.Nanosecond)
	done := false
	// 256B spanning 4 lines plus offset: 5 line accesses.
	c.Access(Read, 0x20, 256, func() { done = true })
	e.RunAll()
	if !done {
		t.Fatal("multi-line access never completed")
	}
	if lower.reads.Count() != 5 {
		t.Errorf("line fills = %d, want 5", lower.reads.Count())
	}
}

func TestCacheUpgradeWithoutBusIsFree(t *testing.T) {
	// A standalone write-back cache has no coherence domain: S lines
	// cannot exist, and upgrades complete locally. Simulate by filling
	// and writing; state must be M.
	e, c, _ := newCache(t, testCfg("l1"), 10*sim.Nanosecond)
	c.Access(Read, 0, 8, nil)
	e.RunAll()
	c.Access(Write, 0, 8, nil)
	e.RunAll()
	_, dirty := c.Contents()
	if dirty != 1 {
		t.Fatalf("dirty = %d, want 1 (E→M on write hit)", dirty)
	}
	if c.upgrades.Count() != 0 {
		t.Errorf("upgrades = %d, want 0 (exclusive fill needs no upgrade)", c.upgrades.Count())
	}
}

func TestSimpleMemoryBandwidth(t *testing.T) {
	e := sim.NewEngine()
	m := NewSimpleMemory(e, "m", 0, 1e9, nil) // 1 GB/s, zero latency
	var last sim.Time
	for i := 0; i < 10; i++ {
		m.Access(Read, 0, 1000, func() { last = e.Now() })
	}
	e.RunAll()
	// 10 KB at 1 GB/s = 10 us.
	if last < 9*sim.Microsecond || last > 11*sim.Microsecond {
		t.Errorf("10KB at 1GB/s finished at %v, want ~10us", last)
	}
}

func TestDeviceName(t *testing.T) {
	e := sim.NewEngine()
	m := NewSimpleMemory(e, "zz", 0, 0, nil)
	if deviceName(m) != "zz" {
		t.Errorf("deviceName = %q", deviceName(m))
	}
	if deviceName(&BusPort{}) == "" {
		t.Error("fallback name empty")
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("op strings")
	}
	if LRU.String() != "lru" || FIFO.String() != "fifo" || RandomRepl.String() != "random" || ReplKind(7).String() == "" {
		t.Fatal("repl strings")
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	// L1 -> L2 -> L3 -> memory: each level absorbs its share. Stream a
	// working set sized between L2 and L3 twice: the second pass should
	// hit in L3, not memory.
	e := sim.NewEngine()
	lower := NewSimpleMemory(e, "mem", 100*sim.Nanosecond, 0, nil)
	mk := func(name string, kb int, below Device) *Cache {
		c, err := NewCache(e, CacheConfig{
			Name: name, SizeBytes: kb << 10, LineBytes: 64, Assoc: 8,
			HitLatency: sim.Nanosecond, MSHRs: 16, WriteBack: true,
		}, below, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	l3 := mk("l3", 256, lower)
	l2 := mk("l2", 32, l3)
	l1 := mk("l1", 4, l2)
	const ws = 128 << 10 // fits L3, not L2
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			l1.Access(Read, a, 8, nil)
		}
		e.RunAll()
	}
	if l3.HitRate() < 0.45 {
		t.Errorf("L3 hit rate = %.3f, want ~0.5 (second pass resident)", l3.HitRate())
	}
	if got := lower.reads.Count(); got != ws/64 {
		t.Errorf("memory reads = %d, want %d (one compulsory pass)", got, ws/64)
	}
	if l1.HitRate() > 0.1 {
		t.Errorf("L1 hit rate = %.3f on a streaming set 32x its size", l1.HitRate())
	}
}
