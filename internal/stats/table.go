package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as an aligned text table or CSV — the
// output format of every benchmark harness in this repository.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i.
func (t *Table) Row(i int) []string { return t.rows[i] }

// Cell returns the cell at (row, col) or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	sb.Reset()
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
			} else {
				sb.WriteString(cell + "  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// RenderCSV writes the table as CSV with the title as a comment line.
func (t *Table) RenderCSV(w io.Writer) {
	t.WriteCSV(w) //nolint:errcheck // legacy best-effort variant
}

// WriteCSV is RenderCSV with an error return, for exporters that must not
// silently truncate on a failed write.
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "# %s\n", t.Title)
	}
	fmt.Fprintln(&sb, strings.Join(t.Columns, ","))
	for _, row := range t.rows {
		fmt.Fprintln(&sb, strings.Join(row, ","))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// MarshalJSON encodes the table as {"title", "columns", "rows"}. Cells stay
// the already-rendered strings, which keeps NaN/Inf cells from failed sweep
// points representable (encoding/json rejects non-finite numbers).
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	cols := t.Columns
	if cols == nil {
		cols = []string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, cols, rows})
}

// WriteJSON emits the table as one indented JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
