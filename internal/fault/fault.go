// Package fault provides deterministic, seeded fault injection for gosst
// models — the co-design axis the exascale resilience studies need: what
// does a machine's failure behavior cost, and how should the system design
// respond?
//
// Injectors attach to the existing simulation primitives rather than
// requiring fault-aware components:
//
//   - InjectLink wraps a sim.Link with seeded payload drop, corruption and
//     transient extra delay (link.go).
//   - KillAt schedules the death of a named component at a fixed time;
//     FailureProcess kills a component at exponentially distributed times,
//     modelling a machine with a given MTBF (kill.go).
//   - CheckpointModel simulates an application doing checkpoint/restart on
//     a failing machine, with the Young/Daly closed forms as analytic
//     oracles (checkpoint.go).
//
// Determinism contract: every injector derives its randomness from the
// caller's root seed and a stable textual identity (a link name plus
// direction, a component name) — never from map order, goroutine
// scheduling, or a shared global stream. Link interceptors run on the
// sending side in simulated-event order, and the two directions of a link
// use independent streams, so the same seed produces a bit-identical fault
// trace and bit-identical simulation results at any internal/par rank
// count and any internal/core sweep worker count.
package fault

import (
	"fmt"

	"sst/internal/sim"
)

// Kind labels a trace entry.
type Kind uint8

const (
	// Drop: a link payload was discarded.
	Drop Kind = iota
	// Corrupt: a link payload was rewritten in flight.
	Corrupt
	// Delay: a link payload was delivered late.
	Delay
	// Kill: a component was killed.
	Kill
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one injected fault. Events are plain comparable values so
// determinism tests can require trace equality with ==.
type Event struct {
	// At is the simulated time the fault was injected.
	At sim.Time
	// Kind is what was done.
	Kind Kind
	// Target identifies the victim: "linkname.a->" for sends leaving port
	// a, or a component name for kills.
	Target string
	// Seq is the per-target ordinal of the fault (1-based).
	Seq uint64
}

// Trace is an ordered fault log. Each injector owns its own trace (one per
// link direction, one per killer), so traces are written single-threadedly
// by the engine that owns the injection point.
type Trace []Event

// StreamSeed derives the sub-seed for a named injector from a root seed.
// FNV-1a over the name keeps the derivation stable across runs, processes
// and partitionings — unlike anything keyed on pointer identity or
// iteration order.
func StreamSeed(root uint64, name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h ^ root
}

// NewStream returns the deterministic RNG for a named injector.
func NewStream(root uint64, name string) *sim.RNG {
	return sim.NewRNG(StreamSeed(root, name))
}

// Killable is implemented by components that can model their own death: a
// kill makes the component lose in-flight state and stop (or recover, if
// it models restart — the checkpoint worker does).
type Killable interface {
	sim.Component
	Kill()
}

// KillRecord describes one scheduled component kill. When the engine has
// snapshots enabled the record is also the checkpoint owner of its pending
// kill event (snapshot.go).
type KillRecord struct {
	// Name is the component name.
	Name string
	// At is the scheduled kill time.
	At sim.Time
	// Done reports whether the kill has fired.
	Done bool

	kill Killable
	eng  *sim.Engine
	seq  uint64
}

// KillAt schedules the named component's death at time t (absolute). The
// component must already be registered with the simulation and implement
// Killable; both are configuration errors reported immediately, not at
// fire time.
func KillAt(s *sim.Simulation, name string, t sim.Time) (*KillRecord, error) {
	c := s.Component(name)
	if c == nil {
		return nil, fmt.Errorf("fault: kill target %q not registered", name)
	}
	k, ok := c.(Killable)
	if !ok {
		return nil, fmt.Errorf("fault: component %q (%T) is not Killable", name, c)
	}
	if t < s.Now() {
		return nil, fmt.Errorf("fault: kill of %q scheduled at %v, before now %v", name, t, s.Now())
	}
	eng := s.Engine()
	rec := &KillRecord{Name: name, At: t, kill: k, eng: eng}
	if eng.SnapshotsEnabled() {
		rec.seq = eng.NextSeq()
		eng.RegisterCheckpoint("kill:"+name+"@"+t.String(), rec)
	}
	eng.ScheduleAt(t, sim.PrioLink, rec.fire, nil)
	return rec, nil
}
