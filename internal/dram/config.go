// Package dram implements a DRAMSim-style main-memory timing and power
// model: channels, ranks and banks with row-buffer state, DDR-class timing
// constraints (tCAS/tRCD/tRP/tRAS/tRFC/tREFI), FCFS and FR-FCFS request
// scheduling, refresh, and IDD-style energy accounting.
//
// Presets encode the memory technologies compared in the SST design-space
// exploration study (DDR2, DDR3, GDDR5): the absolute numbers are datasheet
// approximations, but the relative bandwidth/latency/power/cost ordering —
// which is what the study's conclusions rest on — is preserved.
package dram

import (
	"fmt"

	"sst/internal/sim"
)

// SchedulerKind selects the memory-controller scheduling policy.
type SchedulerKind uint8

const (
	// FCFS services requests strictly in arrival order.
	FCFS SchedulerKind = iota
	// FRFCFS (first-ready, first-come first-served) prefers row-buffer
	// hits over older row misses, the standard high-performance policy.
	FRFCFS
)

func (s SchedulerKind) String() string {
	switch s {
	case FCFS:
		return "fcfs"
	case FRFCFS:
		return "fr-fcfs"
	default:
		return fmt.Sprintf("scheduler(%d)", uint8(s))
	}
}

// MappingKind selects how physical addresses spread over channels/banks.
type MappingKind uint8

const (
	// MapInterleave rotates consecutive cache lines across channels then
	// banks (bandwidth-friendly; streaming opens one row per bank and
	// then streams hits).
	MapInterleave MappingKind = iota
	// MapSequential fills an entire row in one bank before moving to the
	// next bank (locality-friendly for single-stream, poor bank
	// parallelism).
	MapSequential
)

func (m MappingKind) String() string {
	switch m {
	case MapInterleave:
		return "interleave"
	case MapSequential:
		return "sequential"
	default:
		return fmt.Sprintf("mapping(%d)", uint8(m))
	}
}

// Energy groups the per-operation energy and static power of one channel.
// Units: joules and watts.
type Energy struct {
	// ActivateJ is the energy of one row activate+precharge pair.
	ActivateJ float64
	// PerByteJ is the dynamic energy per byte transferred.
	PerByteJ float64
	// RefreshJ is the energy of one all-bank refresh.
	RefreshJ float64
	// BackgroundW is the standby power of the channel.
	BackgroundW float64
}

// Config describes one memory system.
type Config struct {
	// Name labels the technology (for reports).
	Name string

	// Channels is the number of independent channels; each has its own
	// command/data bus and scheduler.
	Channels int
	// BanksPerChannel is the number of banks (rank×bank flattened).
	BanksPerChannel int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes int
	// LineBytes is the transfer granule (cache line).
	LineBytes int

	// BusClock is the DRAM I/O clock; data moves on both edges
	// (effective rate 2×BusClock).
	BusClock sim.Hz
	// BusBytes is the data-bus width in bytes.
	BusBytes int

	// Timing, in bus-clock cycles.
	TCAS  sim.Cycle // column access (read latency after row open)
	TRCD  sim.Cycle // row-to-column delay (activate)
	TRP   sim.Cycle // row precharge
	TRAS  sim.Cycle // minimum row-open time
	TRFC  sim.Cycle // refresh cycle time
	TREFI sim.Time  // refresh interval (absolute time)

	Scheduler SchedulerKind
	Mapping   MappingKind
	// WindowPerChannel bounds how many requests the controller may have
	// in flight per channel (the scheduler's reordering window).
	WindowPerChannel int
	// QueueCap bounds the per-channel request queue; 0 means unbounded.
	QueueCap int

	Energy Energy
	// DollarsPerGB prices the technology for cost studies.
	DollarsPerGB float64
}

// Validate checks structural invariants and fills defaults.
func (c *Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 {
		return fmt.Errorf("dram %s: need positive channels/banks", c.Name)
	}
	if c.LineBytes <= 0 || c.RowBytes < c.LineBytes || c.RowBytes%c.LineBytes != 0 {
		return fmt.Errorf("dram %s: row size %d must be a positive multiple of line size %d",
			c.Name, c.RowBytes, c.LineBytes)
	}
	if c.BusClock == 0 || c.BusBytes <= 0 {
		return fmt.Errorf("dram %s: need positive bus clock and width", c.Name)
	}
	if c.WindowPerChannel == 0 {
		c.WindowPerChannel = 8
	}
	return nil
}

// cycles converts n bus cycles to time.
func (c *Config) cycles(n sim.Cycle) sim.Time { return c.BusClock.CycleTime(n) }

// lineTransferTime returns the bus occupancy of one cache-line burst at the
// double-data-rate effective bandwidth.
func (c *Config) lineTransferTime() sim.Time {
	beats := (c.LineBytes + c.BusBytes - 1) / c.BusBytes
	// Two beats per bus clock (DDR).
	halfPeriods := sim.Cycle(beats)
	t := c.BusClock.CycleTime(halfPeriods) / 2
	if t == 0 {
		t = 1
	}
	return t
}

// PeakBandwidth returns the theoretical peak across all channels, bytes/s.
func (c Config) PeakBandwidth() float64 {
	return 2 * float64(c.BusClock) * float64(c.BusBytes) * float64(c.Channels)
}

// IdleLatency returns the unloaded read latency (activate + CAS + one
// burst) — a configuration-level sanity metric.
func (c Config) IdleLatency() sim.Time {
	return c.cycles(c.TRCD+c.TCAS) + c.lineTransferTime()
}

// Standard technology presets. Channels default to 1 so node models can
// scale channel count independently; use WithChannels.
var (
	// DDR2_800: 400 MHz bus, 6.4 GB/s/channel. Cheap, low power,
	// antiquated performance.
	DDR2_800 = Config{
		Name: "DDR2-800", Channels: 1, BanksPerChannel: 8,
		RowBytes: 8 << 10, LineBytes: 64,
		BusClock: 400 * sim.MHz, BusBytes: 8,
		TCAS: 5, TRCD: 5, TRP: 5, TRAS: 18, TRFC: 51, TREFI: 7800 * sim.Nanosecond,
		Scheduler: FRFCFS, Mapping: MapInterleave, WindowPerChannel: 8,
		Energy: Energy{
			ActivateJ: 12e-9, PerByteJ: 0.65e-9, RefreshJ: 40e-9, BackgroundW: 0.35,
		},
		DollarsPerGB: 10,
	}

	// DDR3_800: 400 MHz bus, 6.4 GB/s/channel — the low end of the
	// memory-speed sensitivity study.
	DDR3_800 = Config{
		Name: "DDR3-800", Channels: 1, BanksPerChannel: 8,
		RowBytes: 8 << 10, LineBytes: 64,
		BusClock: 400 * sim.MHz, BusBytes: 8,
		TCAS: 6, TRCD: 6, TRP: 6, TRAS: 15, TRFC: 44, TREFI: 7800 * sim.Nanosecond,
		Scheduler: FRFCFS, Mapping: MapInterleave, WindowPerChannel: 8,
		Energy: Energy{
			ActivateJ: 10e-9, PerByteJ: 0.52e-9, RefreshJ: 45e-9, BackgroundW: 0.4,
		},
		DollarsPerGB: 8,
	}

	// DDR3_1066: 533 MHz bus, 8.5 GB/s/channel.
	DDR3_1066 = Config{
		Name: "DDR3-1066", Channels: 1, BanksPerChannel: 8,
		RowBytes: 8 << 10, LineBytes: 64,
		BusClock: 533 * sim.MHz, BusBytes: 8,
		TCAS: 7, TRCD: 7, TRP: 7, TRAS: 20, TRFC: 59, TREFI: 7800 * sim.Nanosecond,
		Scheduler: FRFCFS, Mapping: MapInterleave, WindowPerChannel: 8,
		Energy: Energy{
			ActivateJ: 10e-9, PerByteJ: 0.5e-9, RefreshJ: 45e-9, BackgroundW: 0.45,
		},
		DollarsPerGB: 8,
	}

	// DDR3_1333: 666 MHz bus, 10.7 GB/s/channel — the study's DDR3
	// midpoint.
	DDR3_1333 = Config{
		Name: "DDR3-1333", Channels: 1, BanksPerChannel: 8,
		RowBytes: 8 << 10, LineBytes: 64,
		BusClock: 666 * sim.MHz, BusBytes: 8,
		TCAS: 9, TRCD: 9, TRP: 9, TRAS: 24, TRFC: 74, TREFI: 7800 * sim.Nanosecond,
		Scheduler: FRFCFS, Mapping: MapInterleave, WindowPerChannel: 8,
		Energy: Energy{
			ActivateJ: 10e-9, PerByteJ: 0.5e-9, RefreshJ: 45e-9, BackgroundW: 0.5,
		},
		DollarsPerGB: 8,
	}

	// DDR3_1600: 800 MHz bus, 12.8 GB/s/channel.
	DDR3_1600 = Config{
		Name: "DDR3-1600", Channels: 1, BanksPerChannel: 8,
		RowBytes: 8 << 10, LineBytes: 64,
		BusClock: 800 * sim.MHz, BusBytes: 8,
		TCAS: 11, TRCD: 11, TRP: 11, TRAS: 28, TRFC: 88, TREFI: 7800 * sim.Nanosecond,
		Scheduler: FRFCFS, Mapping: MapInterleave, WindowPerChannel: 8,
		Energy: Energy{
			ActivateJ: 10e-9, PerByteJ: 0.48e-9, RefreshJ: 45e-9, BackgroundW: 0.55,
		},
		DollarsPerGB: 8,
	}

	// GDDR5_4000: 2 GHz bus, 32 GB/s/channel. Expensive, high power,
	// very high bandwidth; slightly worse idle latency than DDR3.
	GDDR5_4000 = Config{
		Name: "GDDR5-4000", Channels: 1, BanksPerChannel: 16,
		RowBytes: 2 << 10, LineBytes: 64,
		BusClock: 2000 * sim.MHz, BusBytes: 8,
		TCAS: 30, TRCD: 28, TRP: 28, TRAS: 70, TRFC: 230, TREFI: 3900 * sim.Nanosecond,
		Scheduler: FRFCFS, Mapping: MapInterleave, WindowPerChannel: 16,
		Energy: Energy{
			ActivateJ: 12e-9, PerByteJ: 0.7e-9, RefreshJ: 55e-9, BackgroundW: 2.2,
		},
		DollarsPerGB: 25,
	}
)

// Presets lists the built-in technologies by name.
func Presets() map[string]Config {
	return map[string]Config{
		"ddr2-800":   DDR2_800,
		"ddr3-800":   DDR3_800,
		"ddr3-1066":  DDR3_1066,
		"ddr3-1333":  DDR3_1333,
		"ddr3-1600":  DDR3_1600,
		"gddr5-4000": GDDR5_4000,
	}
}

// Preset returns a named preset.
func Preset(name string) (Config, error) {
	c, ok := Presets()[name]
	if !ok {
		return Config{}, fmt.Errorf("dram: unknown preset %q", name)
	}
	return c, nil
}

// WithChannels returns a copy of the config with the given channel count.
func (c Config) WithChannels(n int) Config {
	c.Channels = n
	return c
}

// WithScheduler returns a copy of the config with the given scheduler.
func (c Config) WithScheduler(s SchedulerKind) Config {
	c.Scheduler = s
	return c
}

// WithMapping returns a copy of the config with the given address mapping.
func (c Config) WithMapping(m MappingKind) Config {
	c.Mapping = m
	return c
}
