package mem

import "sst/internal/sim"

// ChannelDevice adapts a Device so that requests reach it over a sim.Link —
// the memory channel as a first-class link rather than a hidden direct
// call. The link is created with zero latency, so timing is unchanged
// relative to the direct-call hierarchy (delivery lands at the same
// timestamp, after the issuing handler returns); what it buys is that
// channel traffic becomes visible to everything that understands links:
// trace attribution, message/byte counters, and fault injection.
//
// Completion callbacks still return directly — the request crossing the
// link is the modelled direction; replies ride the completion closure.
type ChannelDevice struct {
	send  *sim.Port
	lower Device
	// free recycles request envelopes: sending a struct by value would box
	// it into the link payload's `any` on every access, while a recycled
	// pointer crosses for free. Requests dropped by a fault interceptor are
	// simply never recycled.
	free []*channelReq
}

// channelReq is one memory access crossing the channel link.
type channelReq struct {
	op   Op
	addr uint64
	size int
	done func()
}

// PayloadBytes implements sim.Sized for link byte accounting.
func (r *channelReq) PayloadBytes() int { return r.size }

// NewChannelDevice wires lower behind the link owning ports (a, b):
// accesses enter at a and are serviced by lower on the b side. Build the
// link with zero latency to preserve direct-call timing.
func NewChannelDevice(a, b *sim.Port, lower Device) *ChannelDevice {
	d := &ChannelDevice{send: a, lower: lower}
	b.SetHandler(func(p any) {
		r := p.(*channelReq)
		op, addr, size, done := r.op, r.addr, r.size, r.done
		r.done = nil
		d.free = append(d.free, r)
		d.lower.Access(op, addr, size, done)
	})
	return d
}

// Access implements Device by sending the request across the channel link.
func (d *ChannelDevice) Access(op Op, addr uint64, size int, done func()) {
	var r *channelReq
	if n := len(d.free) - 1; n >= 0 {
		r, d.free[n] = d.free[n], nil
		d.free = d.free[:n]
	} else {
		r = new(channelReq)
	}
	r.op, r.addr, r.size, r.done = op, addr, size, done
	d.send.Send(r)
}
