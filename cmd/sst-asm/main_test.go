package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAsmDisassemble(t *testing.T) {
	path := writeProg(t, "addi r1, r0, 7\nend: halt")
	if err := run(path, false, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestAsmExecute(t *testing.T) {
	path := writeProg(t, "addi r1, r0, 7\nhalt")
	if err := run(path, true, 100, true); err != nil {
		t.Fatal(err)
	}
}

func TestAsmBudgetExhausted(t *testing.T) {
	path := writeProg(t, "loop: b loop")
	if err := run(path, true, 10, false); err != nil {
		t.Fatal(err)
	}
}

func TestAsmErrors(t *testing.T) {
	if err := run("/nonexistent.s", false, 0, false); err == nil {
		t.Error("missing file accepted")
	}
	path := writeProg(t, "bogus r1")
	if err := run(path, false, 0, false); err == nil {
		t.Error("bad program assembled")
	}
}
