package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"sst/internal/config"
)

func TestSweepOptionsDefaults(t *testing.T) {
	// The zero value is the documented default: GOMAXPROCS workers over
	// the background context, with explicit options taking precedence.
	if got := (SweepOptions{}).workers(); got < 1 {
		t.Fatalf("zero-options workers = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := (SweepOptions{Workers: 5}).workers(); got != 5 {
		t.Fatalf("option workers = %d, want 5", got)
	}
	if got := (SweepOptions{Workers: -2}).workers(); got < 1 {
		t.Fatalf("negative workers = %d, want GOMAXPROCS fallback", got)
	}
	if got := (SweepOptions{}).context(); got != context.Background() {
		t.Fatal("zero-options context is not background")
	}
	own, cancel := context.WithCancel(context.Background())
	defer cancel()
	if got := (SweepOptions{Context: own}).context(); got != own {
		t.Fatal("explicit context not honoured")
	}
}

func TestRunPointsCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 100
		var hits [n]atomic.Int64
		if err := runPoints(SweepOptions{Workers: workers}, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: point %d ran %d times", workers, i, got)
			}
		}
	}
	if err := runPoints(SweepOptions{}, 0, func(int) error { t.Error("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunPointsAggregatesErrorsInOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := runPoints(SweepOptions{Workers: workers}, 10, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 7 {
				return fmt.Errorf("point %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: errors swallowed", workers)
		}
		// Failures must not stop the remaining points.
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: only %d points ran after a failure", workers, ran.Load())
		}
		// Aggregated in point order, so the message is deterministic.
		want := "point 3 failed\npoint 7 failed"
		if err.Error() != want {
			t.Fatalf("workers=%d: error = %q, want %q", workers, err.Error(), want)
		}
	}
}

// pointRecorder is a minimal SweepMetrics sink for tests.
type pointRecorder struct {
	mu      sync.Mutex
	reports []PointReport
}

func (r *pointRecorder) PointDone(p PointReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reports = append(r.reports, p)
}

func TestRunPointsReportsMetrics(t *testing.T) {
	rec := &pointRecorder{}
	err := runPoints(SweepOptions{Workers: 3, Metrics: rec}, 20, func(i int) error {
		if i == 5 {
			return fmt.Errorf("point 5 failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if len(rec.reports) != 20 {
		t.Fatalf("got %d reports, want 20", len(rec.reports))
	}
	seen := map[int]bool{}
	for _, p := range rec.reports {
		if seen[p.Index] {
			t.Fatalf("point %d reported twice", p.Index)
		}
		seen[p.Index] = true
		if p.Worker < 0 || p.Worker >= 3 {
			t.Fatalf("point %d reported worker %d", p.Index, p.Worker)
		}
		if p.Wall < 0 || p.Start.IsZero() {
			t.Fatalf("point %d has bogus timing: %+v", p.Index, p)
		}
		if (p.Err != nil) != (p.Index == 5) {
			t.Fatalf("point %d err = %v", p.Index, p.Err)
		}
	}
}

// TestConcurrentSweepDeterminism asserts the headline safety property of
// the concurrent scheduler: a sweep run on several workers — with or
// without per-worker arenas — produces a grid identical — every
// NodeResult field of every point — to the same sweep on one worker, so
// the Fig. 10/11/12 tables are byte-identical at any -j.
func TestConcurrentSweepDeterminism(t *testing.T) {
	apps := []string{"stream", "gups"}
	techs := []string{"ddr3-1333", "gddr5-4000"}
	widths := []int{1, 2}

	// HostSeconds is host wall-clock — the one field allowed to differ
	// between runs.
	normalize := func(r NodeResult) NodeResult {
		r.HostSeconds = 0
		return r
	}
	seq, err := MemTechWidthSweep(apps, techs, widths, Small, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One pool across all the arena runs: arenas warmed by one sweep are
	// handed to the next, exactly how the sweep service reuses them.
	pool := NewArenaPool()
	for _, workers := range []int{2, 4} {
		for _, arenas := range []*ArenaPool{nil, pool} {
			conc, err := MemTechWidthSweep(apps, techs, widths, Small,
				SweepOptions{Workers: workers, Arena: arenas})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("workers=%d arena=%v", workers, arenas != nil)
			if len(conc.Points) != len(seq.Points) {
				t.Fatalf("%s: %d points, want %d", label, len(conc.Points), len(seq.Points))
			}
			for i := range seq.Points {
				a, b := &seq.Points[i], &conc.Points[i]
				if a.App != b.App || a.Tech != b.Tech || a.Width != b.Width {
					t.Fatalf("%s: point %d is (%s,%s,%d), want (%s,%s,%d)",
						label, i, b.App, b.Tech, b.Width, a.App, a.Tech, a.Width)
				}
				if !reflect.DeepEqual(normalize(*a.Result), normalize(*b.Result)) {
					t.Errorf("%s: point %d (%s/%s/w%d) diverged:\nseq:  %+v\nconc: %+v",
						label, i, a.App, a.Tech, a.Width, *a.Result, *b.Result)
				}
			}
			// The rendered tables must match byte for byte.
			seqTab := Fig10Table(seq, apps, techs, widths, "ddr3-1333").String()
			concTab := Fig10Table(conc, apps, techs, widths, "ddr3-1333").String()
			if seqTab != concTab {
				t.Errorf("%s: Fig10 table differs from sequential render", label)
			}
		}
	}
}

// TestConcurrentSweepsDifferentOptions runs two sweeps with different
// worker counts, contexts and metrics sinks at the same time — the property
// the SweepOptions redesign exists to provide (run with -race).
func TestConcurrentSweepsDifferentOptions(t *testing.T) {
	type out struct {
		grid *DSEGrid
		err  error
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	recA, recB := &pointRecorder{}, &pointRecorder{}
	var wg sync.WaitGroup
	var a, b out
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.grid, a.err = MemTechWidthSweep([]string{"stream"}, []string{"ddr3-1333"}, []int{1, 2}, Small,
			SweepOptions{Workers: 1, Context: ctxA, Metrics: recA})
	}()
	go func() {
		defer wg.Done()
		b.grid, b.err = MemTechWidthSweep([]string{"gups"}, []string{"gddr5-4000"}, []int{1, 2}, Small,
			SweepOptions{Workers: 4, Metrics: recB})
	}()
	wg.Wait()
	if a.err != nil || b.err != nil {
		t.Fatalf("sweep errors: %v / %v", a.err, b.err)
	}
	if len(recA.reports) != 2 || len(recB.reports) != 2 {
		t.Fatalf("metrics crossed sweeps: A saw %d, B saw %d (want 2 each)",
			len(recA.reports), len(recB.reports))
	}
	for _, p := range a.grid.Points {
		if p.App != "stream" {
			t.Fatalf("sweep A got point %q", p.App)
		}
	}
	for _, p := range b.grid.Points {
		if p.App != "gups" {
			t.Fatalf("sweep B got point %q", p.App)
		}
	}
}

// TestDSEGridJSONRoundTrip pins the acceptance criterion for -format json:
// the grid's JSON re-parses and its cells match the rendered table.
func TestDSEGridJSONRoundTrip(t *testing.T) {
	grid, err := MemTechWidthSweep([]string{"stream"}, []string{"ddr3-1333"}, []int{1, 2}, Small, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := grid.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("grid JSON does not re-parse: %v", err)
	}
	tab := grid.Table()
	if len(decoded.Rows) != tab.NumRows() {
		t.Fatalf("JSON has %d rows, table has %d", len(decoded.Rows), tab.NumRows())
	}
	if len(decoded.Columns) == 0 || decoded.Columns[0] != "app" {
		t.Fatalf("columns = %v", decoded.Columns)
	}
	// Every JSON cell must appear verbatim in the rendered table.
	rendered := tab.String()
	for _, row := range decoded.Rows {
		for _, cell := range row {
			if cell == "" {
				continue
			}
			if !bytes.Contains([]byte(rendered), []byte(cell)) {
				t.Errorf("JSON cell %q missing from rendered table", cell)
			}
		}
	}
}

func TestGridFindIndexed(t *testing.T) {
	g := &DSEGrid{}
	for _, app := range []string{"a", "b"} {
		for w := 1; w <= 3; w++ {
			g.Points = append(g.Points, DSEPoint{App: app, Tech: "t", Width: w})
		}
	}
	if p := g.Find("b", "t", 2); p == nil || p.App != "b" || p.Width != 2 {
		t.Fatalf("Find returned %+v", p)
	}
	if g.Find("c", "t", 1) != nil || g.Find("a", "t", 9) != nil {
		t.Fatal("Find fabricated a point")
	}
	// The index must follow appends made after the first lookup.
	g.Points = append(g.Points, DSEPoint{App: "c", Tech: "t", Width: 1})
	if p := g.Find("c", "t", 1); p == nil {
		t.Fatal("Find missed a point appended after indexing")
	}
	// Pointers returned must alias the grid's own points.
	if p := g.Find("a", "t", 1); p != &g.Points[0] {
		t.Fatal("Find returned a copy, not the grid point")
	}
}

func TestRunMachinesBatch(t *testing.T) {
	opts := SweepOptions{Workers: 2}
	cfgA := SweepMachine("stream", "ddr3-1333", 1, Small)
	cfgB := SweepMachine("stream", "gddr5-4000", 1, Small)
	results, err := RunMachines([]*config.MachineConfig{cfgA, cfgB}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatalf("batch incomplete: %v", results)
	}
	if results[0].Name != cfgA.Name || results[1].Name != cfgB.Name {
		t.Fatalf("batch order broken: %s, %s", results[0].Name, results[1].Name)
	}
	bad := SweepMachine("stream", "ddr3-1333", 1, Small)
	bad.Workload.Kind = "quantum"
	if _, err := RunMachines([]*config.MachineConfig{cfgA, bad}, opts); err == nil {
		t.Fatal("batch error swallowed")
	}
}
