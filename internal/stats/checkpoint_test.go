package stats

import (
	"math"
	"testing"

	"sst/internal/sim"
)

func TestRegistrySaveLoadRoundTrip(t *testing.T) {
	build := func() (*Registry, *Counter, *Accumulator, *Histogram, *Gauge) {
		r := NewRegistry()
		s := r.Scope("comp")
		return r, s.Counter("events"), s.Accumulator("lat"), s.Histogram("dist"), s.Gauge("occ")
	}

	r1, c1, a1, h1, g1 := build()
	c1.Add(12345)
	for _, v := range []float64{1.5, 2.25, -3.125, 1e-9, 7e12} {
		a1.Observe(v)
	}
	for _, v := range []uint64{0, 1, 2, 1023, 1 << 40} {
		h1.Observe(v)
	}
	g1.Add(7)
	g1.Add(-3)

	enc := sim.NewEncoder()
	r1.SaveState(enc)

	r2, c2, a2, h2, g2 := build()
	dec := sim.NewDecoder(enc.Bytes())
	if err := r2.LoadState(dec); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over", dec.Remaining())
	}
	if *c2 != *c1 {
		t.Errorf("counter: %+v != %+v", c2, c1)
	}
	if *a2 != *a1 {
		t.Errorf("accumulator: %+v != %+v", a2, a1)
	}
	if *h2 != *h1 {
		t.Errorf("histogram mismatch")
	}
	if *g2 != *g1 {
		t.Errorf("gauge: %+v != %+v", g2, g1)
	}

	// Saving the restored registry must reproduce the bytes exactly.
	enc2 := sim.NewEncoder()
	r2.SaveState(enc2)
	if string(enc2.Bytes()) != string(enc.Bytes()) {
		t.Error("re-save is not byte-identical")
	}
}

func TestRegistryLoadEmptyAccumulator(t *testing.T) {
	// min=+Inf / max=-Inf of an untouched accumulator must survive.
	r1 := NewRegistry()
	a1 := r1.Scope("x").Accumulator("a")
	enc := sim.NewEncoder()
	r1.SaveState(enc)
	r2 := NewRegistry()
	a2 := r2.Scope("x").Accumulator("a")
	a2.Observe(5) // dirty, must be overwritten
	if err := r2.LoadState(sim.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a2.Min(), 1) || !math.IsInf(a2.Max(), -1) || a2.N() != 0 {
		t.Errorf("empty accumulator not restored: %+v vs %+v", a2, a1)
	}
}

func TestRegistryLoadShapeMismatch(t *testing.T) {
	r1 := NewRegistry()
	r1.Scope("x").Counter("a")
	enc := sim.NewEncoder()
	r1.SaveState(enc)

	r2 := NewRegistry()
	r2.Scope("x").Counter("b")
	if err := r2.LoadState(sim.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("name mismatch not rejected")
	}
	r3 := NewRegistry()
	if err := r3.LoadState(sim.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("size mismatch not rejected")
	}
}
