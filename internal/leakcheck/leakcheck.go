// Package leakcheck is a stdlib-only goroutine-leak guard for tests, in
// the style of go.uber.org/goleak: snapshot the live goroutines when the
// test starts, and at cleanup time require everything started since to
// have exited. The sweep scheduler, the retry loop and the serve worker
// pool all promise that a cancelled, timed-out or drained run leaves
// nothing behind; this is the test-side teeth of that promise.
//
// Goroutines are identified by a stable signature — the function at the
// top of the stack plus the "created by" frame — rather than goroutine
// IDs, so unrelated runtime goroutines coming and going between snapshot
// and check do not flap the test. Shutdown is asynchronous (a worker may
// be a few instructions from returning when the test body ends), so the
// check polls until the leak set is empty or a deadline passes.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs; taking the interface
// keeps the package free of a testing import cycle and lets the checker
// test itself with a fake.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check snapshots the current goroutines and registers a cleanup that
// fails the test if goroutines created during the test are still running
// after a short grace period. Call it first in the test body.
func Check(t TB) {
	t.Helper()
	base := signatures()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			leaked := leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("leakcheck: %d goroutine(s) survived the test:\n%s",
					len(leaked), strings.Join(leaked, "\n---\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// leakedSince returns the stacks of goroutines whose signature count now
// exceeds the baseline, ignoring the runtime/testing machinery.
func leakedSince(base map[string]int) []string {
	var leaked []string
	now := stacks()
	counts := make(map[string]int, len(now))
	for _, g := range now {
		counts[signature(g)]++
	}
	seen := make(map[string]int, len(now))
	for _, g := range now {
		sig := signature(g)
		seen[sig]++
		if ignored(g) {
			continue
		}
		// Report only the overflow beyond the baseline for this signature:
		// pre-existing pool goroutines with the same shape are not leaks.
		if counts[sig] > base[sig] && seen[sig] > base[sig] {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// signatures counts the current goroutines by signature.
func signatures() map[string]int {
	out := map[string]int{}
	for _, g := range stacks() {
		out[signature(g)]++
	}
	return out
}

// stacks returns one stanza per live goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// signature reduces a stack stanza to (top function, created-by), which
// is stable across runs — unlike goroutine IDs, addresses or argument
// values.
func signature(g string) string {
	lines := strings.Split(g, "\n")
	top, created := "", ""
	if len(lines) > 1 {
		top = strings.TrimSpace(lines[1])
		if i := strings.IndexByte(top, '('); i > 0 {
			top = top[:i]
		}
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "created by ") {
			created = strings.TrimSpace(strings.TrimPrefix(l, "created by "))
			if i := strings.Index(created, " in goroutine"); i > 0 {
				created = created[:i]
			}
		}
	}
	return fmt.Sprintf("%s|%s", top, created)
}

// ignored reports stanzas the checker never counts as leaks: the test
// runner itself and the runtime's own service goroutines.
func ignored(g string) bool {
	for _, frame := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runFuzzing",
		"testing.tRunner",
		"runtime.goexit",
		"created by runtime",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"signal.loop",
		"runtime.ensureSigM",
		"time.goFunc",
	} {
		if strings.Contains(g, frame) {
			return true
		}
	}
	return false
}
