// Command sst-net runs the network injection-bandwidth degradation study
// (the Fig. 9 experiment): application communication proxies on a simulated
// 3D torus at a series of injection-bandwidth operating points.
//
// Usage:
//
//	sst-net [-nodes 32] [-steps 6] [-fractions 1,0.5,0.25,0.125] [-csv] [-j N]
//
// The study's (proxy app, bandwidth fraction) cells are independent
// simulations; -j sets how many run concurrently (default: GOMAXPROCS).
// Tables are identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sst/internal/core"
)

func main() {
	var (
		nodesFlag = flag.Int("nodes", 32, "system size (torus nodes)")
		stepsFlag = flag.Int("steps", 6, "application timesteps")
		fracFlag  = flag.String("fractions", "1,0.5,0.25,0.125", "injection bandwidth fractions")
		csvFlag   = flag.Bool("csv", false, "emit CSV")
		jFlag     = flag.Int("j", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*nodesFlag, *stepsFlag, *fracFlag, *csvFlag, *jFlag); err != nil {
		fmt.Fprintln(os.Stderr, "sst-net:", err)
		os.Exit(1)
	}
}

func run(nodes, steps int, fracFlag string, asCSV bool, workers int) error {
	core.SetSweepWorkers(workers)
	cfg := core.NetStudyConfig{Nodes: nodes, Steps: steps}
	for _, f := range strings.Split(fracFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad fraction %q", f)
		}
		cfg.Fractions = append(cfg.Fractions, v)
	}
	table, _, err := core.NetDegradationStudy(cfg)
	if err != nil {
		return err
	}
	ptable, _, err := core.NetPowerStudy(cfg)
	if err != nil {
		return err
	}
	if asCSV {
		table.RenderCSV(os.Stdout)
		ptable.RenderCSV(os.Stdout)
	} else {
		table.Render(os.Stdout)
		fmt.Println()
		ptable.Render(os.Stdout)
	}
	return nil
}
