package fault

import (
	"fmt"
	"math"

	"sst/internal/sim"
)

// LinkFaults configures the per-send fault probabilities of one link. The
// three faults are evaluated independently per payload, in a fixed order
// (drop, then corrupt, then delay) so the random-stream consumption — and
// therefore the whole trace — is reproducible.
type LinkFaults struct {
	// DropP is the probability a payload is silently discarded.
	DropP float64
	// CorruptP is the probability a payload is rewritten in flight (see
	// Corrupted and the integer bit-flip rule).
	CorruptP float64
	// DelayP is the probability a payload is delivered late by a uniform
	// extra delay in (0, MaxDelay].
	DelayP float64
	// MaxDelay bounds the injected extra delay; required when DelayP > 0.
	MaxDelay sim.Time
	// Record enables the per-direction fault trace (off by default: a
	// long simulation's trace is unbounded).
	Record bool
}

// Validate checks probabilities and delay bounds.
func (f LinkFaults) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropP", f.DropP}, {"CorruptP", f.CorruptP}, {"DelayP", f.DelayP}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v out of [0, 1]", p.name, p.v)
		}
	}
	if f.DelayP > 0 && f.MaxDelay <= 0 {
		return fmt.Errorf("fault: DelayP %v needs a positive MaxDelay", f.DelayP)
	}
	return nil
}

// Corrupted wraps a payload the injector could not corrupt in place.
// Integer payloads (the common case in tests and control messages) get a
// deterministic bit flipped instead and arrive as their own type.
type Corrupted struct {
	// Payload is the original payload.
	Payload any
}

// linkDir is one direction's injector state, owned by the engine that owns
// the sending port — the two directions of a cross-rank link live on
// different ranks, so they must not share an RNG or counters.
type linkDir struct {
	rng      *sim.RNG
	now      func() sim.Time // sending side's clock, for trace timestamps
	target   string
	record   bool
	faults   uint64 // per-target fault ordinal, shared across kinds
	sent     uint64
	drops    uint64
	corrupts uint64
	delays   uint64
	trace    Trace
}

// LinkInjector is the installed fault instrumentation of one link.
type LinkInjector struct {
	link *sim.Link
	cfg  LinkFaults
	a, b *linkDir // indexed by sending port
}

// InjectLink installs seeded fault injection on a link. The link must not
// already carry an interceptor. Faults are evaluated on the sending side,
// per direction, from streams derived as StreamSeed(seed, name+".a->") and
// (…".b->"), so results are independent of how the model is partitioned
// across ranks.
func InjectLink(l *sim.Link, seed uint64, cfg LinkFaults) (*LinkInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if l.Intercepted() {
		return nil, fmt.Errorf("fault: link %q already has an interceptor", l.Name())
	}
	pa, _ := l.Ports()
	clock := l.Engine().Now
	inj := &LinkInjector{
		link: l,
		cfg:  cfg,
		a:    newLinkDir(seed, l.Name()+".a->", cfg.Record, clock),
		b:    newLinkDir(seed, l.Name()+".b->", cfg.Record, clock),
	}
	l.SetIntercept(func(from *sim.Port, delay sim.Time, payload any) (sim.Time, any, bool) {
		d := inj.b
		if from == pa {
			d = inj.a
		}
		return inj.apply(d, delay, payload)
	})
	if l.Engine().SnapshotsEnabled() {
		l.Engine().RegisterCheckpoint("fault:"+l.Name(), inj)
	}
	return inj, nil
}

// SetClocks overrides the clock each direction stamps trace events with.
// Both default to the link's home engine, which is correct for local links;
// a cross-rank link built by internal/par has its two directions running on
// different engines, so callers there must point each direction at its own
// rank's clock (reading the home engine's from the far rank is a data
// race). Nil leaves a direction unchanged.
func (inj *LinkInjector) SetClocks(a, b func() sim.Time) {
	if a != nil {
		inj.a.now = a
	}
	if b != nil {
		inj.b.now = b
	}
}

func newLinkDir(seed uint64, target string, record bool, now func() sim.Time) *linkDir {
	return &linkDir{rng: NewStream(seed, target), target: target, record: record, now: now}
}

// apply runs the drop/corrupt/delay decision chain for one send.
func (inj *LinkInjector) apply(d *linkDir, delay sim.Time, payload any) (sim.Time, any, bool) {
	d.sent++
	if inj.cfg.DropP > 0 && d.rng.Bool(inj.cfg.DropP) {
		d.drops++
		d.log(Drop)
		return 0, nil, false
	}
	if inj.cfg.CorruptP > 0 && d.rng.Bool(inj.cfg.CorruptP) {
		d.corrupts++
		d.log(Corrupt)
		payload = corrupt(payload, d.rng)
	}
	if inj.cfg.DelayP > 0 && d.rng.Bool(inj.cfg.DelayP) {
		d.delays++
		d.log(Delay)
		delay += 1 + sim.Time(d.rng.Uint64n(uint64(inj.cfg.MaxDelay)))
	}
	return delay, payload, true
}

func (d *linkDir) log(k Kind) {
	d.faults++
	if d.record {
		d.trace = append(d.trace, Event{At: d.now(), Kind: k, Target: d.target, Seq: d.faults})
	}
}

// corrupt rewrites a payload deterministically: integers get one random
// bit flipped (staying typed, so receivers that type-assert keep working);
// anything else is wrapped in Corrupted.
func corrupt(payload any, rng *sim.RNG) any {
	switch v := payload.(type) {
	case int:
		return v ^ (1 << rng.Uint64n(31))
	case int64:
		return v ^ (1 << rng.Uint64n(63))
	case uint64:
		return v ^ (1 << rng.Uint64n(64))
	case uint32:
		return v ^ (1 << rng.Uint64n(32))
	default:
		return Corrupted{Payload: payload}
	}
}

// Stats reports one direction's census.
type LinkDirStats struct {
	Sent, Drops, Corrupts, Delays uint64
}

// StatsA returns the census for sends leaving port a; StatsB for port b.
func (inj *LinkInjector) StatsA() LinkDirStats { return inj.a.stats() }
func (inj *LinkInjector) StatsB() LinkDirStats { return inj.b.stats() }

func (d *linkDir) stats() LinkDirStats {
	return LinkDirStats{Sent: d.sent, Drops: d.drops, Corrupts: d.corrupts, Delays: d.delays}
}

// TraceA returns the fault trace for sends leaving port a (nil unless
// LinkFaults.Record was set); TraceB for port b.
func (inj *LinkInjector) TraceA() Trace { return inj.a.trace }
func (inj *LinkInjector) TraceB() Trace { return inj.b.trace }
