package serve

// The HTTP/JSON surface over the Server. Routes (Go 1.22 method
// patterns):
//
//	POST   /v1/jobs              submit {tenant, spec, deadline_ms} → 202
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/result  the rendered CSV (terminal jobs)
//	GET    /v1/jobs/{id}/events  journal lines as NDJSON, streamed live
//	GET    /v1/jobs/{id}/metrics per-point host timings (capped ring)
//	DELETE /v1/jobs/{id}         cancel (queued: immediate; running: drain)
//	GET    /v1/metrics           ServiceReport (?format=json|csv|table);
//	                             includes reports_dropped, the count of
//	                             per-point reports the capped rings evicted
//	GET    /healthz             process liveness (always 200)
//	GET    /readyz              admission readiness (503 while draining)
//
// Backpressure is visible at the edge: a full queue answers 429 with a
// Retry-After header, a draining server answers 503, and both leave the
// submitted spec unpersisted so the client knows to retry elsewhere.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"sst/internal/core"
	"sst/internal/obs"
)

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Tenant string       `json:"tenant"`
	Spec   core.JobSpec `json:"spec"`
	// DeadlineMS bounds the job's total runtime in milliseconds; omitted
	// or zero means no job-level deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	return mux
}

// NewHTTPServer wraps a handler in an http.Server hardened against slow
// and hostile clients: ReadHeaderTimeout cuts a slow-loris connection
// that trickles header bytes, IdleTimeout reaps abandoned keep-alives,
// and MaxHeaderBytes bounds header memory. readHeaderTimeout <= 0 means
// the 5s default (tests pass a short one to provoke the cut). Write
// timeouts are deliberately absent: /v1/jobs/{id}/events streams for the
// life of a job.
func NewHTTPServer(h http.Handler, readHeaderTimeout time.Duration) *http.Server {
	if readHeaderTimeout <= 0 {
		readHeaderTimeout = 5 * time.Second
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    64 << 10,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// maxSubmitBytes bounds the POST /v1/jobs body. A legitimate spec is a
// few hundred bytes; anything near the cap is hostile or broken, and
// MaxBytesReader both cuts it off and closes the connection.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body over %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	st, err := s.Submit(req.Tenant, req.Spec, time.Duration(req.DeadlineMS)*time.Millisecond)
	switch {
	case errors.Is(err, ErrQueueFull):
		// The shed path: tell the client when to come back rather than
		// letting it hammer a saturated service.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrStorage):
		// The server's disk, not the client's request: 500, and Submit
		// guarantees nothing was admitted or left behind.
		writeError(w, http.StatusInternalServerError, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	path := s.jobs[id].resultPath()
	s.mu.Unlock()
	raw, err := s.fs.ReadFile(path)
	if err != nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no result for job %s (state %s)", id, st.State))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Write(raw)
}

// handleEvents streams the job's journal as NDJSON: every line already
// in the file, then new lines as points complete, until the job leaves
// the queued/running states (or the client goes away). Only complete
// lines are emitted — the journal's torn-tail discipline applies to
// readers too.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var offset int64
	emit := func() bool {
		raw, err := s.fs.ReadFile(j.journalPath())
		if err != nil || int64(len(raw)) <= offset {
			return false
		}
		chunk := raw[offset:]
		// Stop at the last newline: a torn tail is re-read next round.
		last := -1
		for i := len(chunk) - 1; i >= 0; i-- {
			if chunk[i] == '\n' {
				last = i
				break
			}
		}
		if last < 0 {
			return false
		}
		w.Write(chunk[:last+1])
		offset += int64(last + 1)
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		emit()
		select {
		case <-j.done:
			emit() // final drain of anything journaled at completion
			return
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeResult(w, r, s.Report())
}

// handleJobMetrics serves one job's retained per-point reports — the
// most recent jobReportCap points; the table title and the service
// report's reports_dropped say when older ones were evicted. A job that
// has not started yet has no reports.
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var col *obs.SweepCollector
	if ok {
		col = j.metrics
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	if col == nil {
		col = &obs.SweepCollector{}
	}
	writeResult(w, r, col)
}

// writeResult renders a core.Result under the request's ?format= (JSON
// when unspecified — this is an API, not a terminal).
func writeResult(w http.ResponseWriter, r *http.Request, res core.Result) {
	format, err := core.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("format") == "" {
		format = core.FormatJSON
	}
	switch format {
	case core.FormatCSV:
		w.Header().Set("Content-Type", "text/csv")
	case core.FormatJSON:
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	core.WriteResults(w, format, res)
}
