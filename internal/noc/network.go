package noc

import (
	"fmt"

	"sst/internal/sim"
	"sst/internal/stats"
)

// NetConfig sets the physical parameters of a network.
type NetConfig struct {
	// LinkBandwidth is router-to-router bandwidth, bytes/s.
	LinkBandwidth float64
	// LinkLatency is the wire/pipeline latency per hop.
	LinkLatency sim.Time
	// RouterLatency is the per-hop arbitration/switching delay.
	RouterLatency sim.Time
	// InjectionBandwidth is the node-to-router (NIC) bandwidth, bytes/s.
	// This is the knob the bandwidth-degradation study scales down.
	InjectionBandwidth float64
	// MaxPacketBytes segments messages; 0 defaults to 4 KiB.
	MaxPacketBytes int
}

// Validate fills defaults and checks ranges.
func (c *NetConfig) Validate() error {
	if c.LinkBandwidth <= 0 || c.InjectionBandwidth <= 0 {
		return fmt.Errorf("noc: bandwidths must be positive")
	}
	if c.MaxPacketBytes == 0 {
		c.MaxPacketBytes = 4 << 10
	}
	if c.MaxPacketBytes < 64 {
		return fmt.Errorf("noc: packet size %d too small", c.MaxPacketBytes)
	}
	return nil
}

// DefaultConfig resembles a mid-2000s MPP interconnect: 3.2 GB/s links,
// 100 ns hop latency.
func DefaultConfig() NetConfig {
	return NetConfig{
		LinkBandwidth:      3.2e9,
		LinkLatency:        100 * sim.Nanosecond,
		RouterLatency:      50 * sim.Nanosecond,
		InjectionBandwidth: 3.2e9,
		MaxPacketBytes:     4 << 10,
	}
}

// packet is one wormhole-approximated transfer unit.
type packet struct {
	src, dst int
	size     int // this packet's bytes
	msgSize  int // whole message's bytes (reported on the last packet)
	last     bool
	payload  any
	sentAt   sim.Time
	hops     int
}

// dlink is a directed link's serialization state.
type dlink struct {
	freeAt sim.Time
	busy   uint64 // accumulated occupancy, ps
	bytes  uint64
}

// Network is a complete interconnect instance: topology + routers + links +
// NICs. It is driven entirely by the simulation engine.
type Network struct {
	name   string
	engine *sim.Engine
	topo   Topology
	cfg    NetConfig

	// links[a] maps next-router b to the a→b directed link.
	links []map[int]*dlink
	nics  []*NIC

	packets  *stats.Counter
	messages *stats.Counter
	bytes    *stats.Counter
	msgLat   *stats.Histogram
	hopHist  *stats.Histogram
}

// NewNetwork builds the network. scope may be nil.
func NewNetwork(engine *sim.Engine, name string, topo Topology, cfg NetConfig, scope *stats.Scope) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{name: name, engine: engine, topo: topo, cfg: cfg}
	n.links = make([]map[int]*dlink, topo.NumRouters())
	for i := range n.links {
		n.links[i] = make(map[int]*dlink)
	}
	for _, l := range topo.Links() {
		a, b := l[0], l[1]
		n.links[a][b] = &dlink{}
		n.links[b][a] = &dlink{}
	}
	n.nics = make([]*NIC, topo.NumNodes())
	for i := range n.nics {
		n.nics[i] = &NIC{net: n, node: i}
	}
	if scope == nil {
		scope = stats.NewRegistry().Scope(name)
	}
	n.packets = scope.Counter("packets")
	n.messages = scope.Counter("messages")
	n.bytes = scope.Counter("bytes")
	n.msgLat = scope.Histogram("message_latency_ps")
	n.hopHist = scope.Histogram("hops")
	return n, nil
}

// Name returns the component name.
func (n *Network) Name() string { return n.name }

// Topology returns the network's topology.
func (n *Network) Topology() Topology { return n.topo }

// Config returns the network configuration.
func (n *Network) Config() NetConfig { return n.cfg }

// NIC returns node i's network interface.
func (n *Network) NIC(i int) *NIC { return n.nics[i] }

// MessageLatencyMean returns the average end-to-end message latency (ps).
func (n *Network) MessageLatencyMean() float64 { return n.msgLat.Mean() }

// BytesDelivered returns total payload bytes delivered.
func (n *Network) BytesDelivered() uint64 { return n.bytes.Count() }

// serialize computes the occupancy of size bytes at bw bytes/s.
func serialize(size int, bw float64) sim.Time {
	t := sim.Time(float64(size) / bw * float64(sim.Second))
	if t == 0 {
		t = 1
	}
	return t
}

// hop forwards a packet from router r; -1 routes deliver to the NIC.
func (n *Network) hop(p *packet, r int) {
	nxt := n.topo.Route(r, p.dst)
	if nxt < 0 {
		n.deliver(p)
		return
	}
	l := n.links[r][nxt]
	if l == nil {
		panic(fmt.Sprintf("noc: topology %s routed %d->%d without a link", n.topo.Name(), r, nxt))
	}
	now := n.engine.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	ser := serialize(p.size, n.cfg.LinkBandwidth)
	l.freeAt = start + ser
	l.busy += uint64(ser)
	l.bytes += uint64(p.size)
	p.hops++
	arrive := start + ser + n.cfg.LinkLatency + n.cfg.RouterLatency
	n.engine.ScheduleAt(arrive, sim.PrioLink, func(any) { n.hop(p, nxt) }, nil)
}

// deliver hands a packet to the destination NIC.
func (n *Network) deliver(p *packet) {
	n.packets.Inc()
	nic := n.nics[p.dst]
	if p.last {
		n.messages.Inc()
		n.bytes.Add(uint64(p.msgSize))
		n.msgLat.Observe(uint64(n.engine.Now() - p.sentAt))
		n.hopHist.Observe(uint64(p.hops))
		nic.received++
		if nic.recv != nil {
			nic.recv(p.src, p.msgSize, p.payload)
		}
	}
}

// NIC is a node's network interface: an injection-bandwidth-limited port
// into the fabric plus a receive callback.
type NIC struct {
	net    *Network
	node   int
	freeAt sim.Time
	recv   func(src, size int, payload any)

	sent     uint64
	received uint64
}

// Node returns the NIC's node id.
func (nc *NIC) Node() int { return nc.node }

// SetReceiver installs the message-delivery callback. Messages between the
// same (src,dst) pair arrive in send order (deterministic routing + FIFO
// links).
func (nc *NIC) SetReceiver(fn func(src, size int, payload any)) { nc.recv = fn }

// Sent and Received count completed messages.
func (nc *NIC) Sent() uint64     { return nc.sent }
func (nc *NIC) Received() uint64 { return nc.received }

// Send transmits size payload bytes to dst. onSent (optional) fires when
// the last byte has been injected (the send buffer is free); the payload is
// delivered to dst's receiver when the last packet arrives.
func (nc *NIC) Send(dst, size int, payload any, onSent func()) {
	if dst < 0 || dst >= len(nc.net.nics) {
		panic(fmt.Sprintf("noc: send to invalid node %d", dst))
	}
	n := nc.net
	now := n.engine.Now()
	nc.sent++
	if size <= 0 {
		size = 1
	}
	remaining := size
	injectAt := now
	if nc.freeAt > injectAt {
		injectAt = nc.freeAt
	}
	srcRouter := n.topo.RouterOf(nc.node)
	for remaining > 0 {
		pk := min(remaining, n.cfg.MaxPacketBytes)
		remaining -= pk
		p := &packet{
			src: nc.node, dst: dst, size: pk,
			last: remaining == 0, sentAt: now,
			msgSize: size,
		}
		if p.last {
			p.payload = payload
		}
		ser := serialize(pk, n.cfg.InjectionBandwidth)
		injectAt += ser
		// The packet enters the first router after its injection
		// serialization plus the NIC link latency.
		at := injectAt + n.cfg.LinkLatency
		if nc.node == dst {
			// Loopback: skip the fabric.
			n.engine.ScheduleAt(at, sim.PrioLink, func(any) { n.deliver(p) }, nil)
			continue
		}
		n.engine.ScheduleAt(at, sim.PrioLink, func(any) { n.hop(p, srcRouter) }, nil)
	}
	nc.freeAt = injectAt
	if onSent != nil {
		n.engine.ScheduleAt(injectAt, sim.PrioLink, func(any) { onSent() }, nil)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
