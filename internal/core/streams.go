package core

import (
	"fmt"
	"math"

	"sst/internal/frontend"
	"sst/internal/workload"
)

// offsetStream relocates a stream's memory accesses, giving each core or
// thread a private address-space partition.
type offsetStream struct {
	inner frontend.Stream
	off   uint64
}

func (o *offsetStream) Next(op *frontend.Op) bool {
	if !o.inner.Next(op) {
		return false
	}
	if op.Class == frontend.ClassLoad || op.Class == frontend.ClassStore {
		op.Addr += o.off
	}
	return true
}

// unitOffset spaces per-unit partitions 8 GiB apart.
const unitOffset = 1 << 33

// buildStreams constructs one stream per hardware thread per core,
// partitioning the configured workload across all units so total work stays
// roughly constant as parallelism varies.
func (n *NodeModel) buildStreams() ([][]frontend.Stream, error) {
	cfg := n.Cfg
	cores := cfg.Node.Cores
	threads := 1
	if cfg.Node.CPU.Kind == "threaded" {
		threads = cfg.Node.CPU.Threads
		if threads <= 0 {
			threads = 1
		}
	}
	units := cores * threads
	out := make([][]frontend.Stream, cores)
	for c := 0; c < cores; c++ {
		out[c] = make([]frontend.Stream, threads)
		for t := 0; t < threads; t++ {
			u := c*threads + t
			s, closer, err := n.buildUnitStream(u, units)
			if err != nil {
				n.Close()
				return nil, err
			}
			if closer != nil {
				n.closer = append(n.closer, closer)
			}
			if cfg.MaxOps > 0 {
				s = &frontend.LimitStream{Inner: s, N: cfg.MaxOps / uint64(units)}
			}
			out[c][t] = s
		}
	}
	return out, nil
}

// splitDim shrinks a cubic dimension so units sub-problems total the
// original volume.
func splitDim(n, units int) int {
	d := int(math.Round(float64(n) / math.Cbrt(float64(units))))
	if d < 2 {
		d = 2
	}
	return d
}

// splitCount divides a 1-D extent.
func splitCount(n, units int) int {
	d := n / units
	if d < 1 {
		d = 1
	}
	return d
}

// buildUnitStream creates unit u's share of the workload.
func (n *NodeModel) buildUnitStream(u, units int) (frontend.Stream, func(), error) {
	w := n.Cfg.Workload
	off := uint64(u) * unitOffset
	var ops *frontend.OpPool
	if n.arena != nil {
		ops = n.arena.Ops
	}
	wrap := func(k *workload.Kernel) (frontend.Stream, func(), error) {
		ks := k.StreamPool(ops)
		return &offsetStream{inner: ks, off: off}, ks.Close, nil
	}
	switch w.Kind {
	case "hpccg":
		return wrap(workload.HPCCG(splitDim(w.N, units), w.Iters))
	case "stencil":
		return wrap(workload.Stencil(splitDim(w.N, units), w.Iters))
	case "lulesh":
		return wrap(workload.Lulesh(splitCount(w.N, units), w.Iters))
	case "stream":
		return wrap(workload.STREAMTriad(splitCount(w.N, units), w.Iters))
	case "fea":
		return wrap(workload.FEA(splitCount(w.N, units), w.Iters))
	case "gups":
		table := uint64(64 << 20) // 64 MiB table per unit
		return wrap(workload.GUPS(table, splitCount(w.N, units)*w.Iters, w.Seed+uint64(u)))
	case "minimd":
		return wrap(workload.MiniMD(splitCount(w.N, units), 16, w.Iters, w.Seed+uint64(u)))
	case "synthetic":
		cfg, err := frontend.Profile(w.Profile, w.Ops/uint64(units), w.Seed+uint64(u))
		if err != nil {
			return nil, nil, err
		}
		cfg.Base = off
		s, err := frontend.NewSynthetic(cfg)
		if err != nil {
			return nil, nil, err
		}
		return s, nil, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown workload kind %q", w.Kind)
	}
}
