package core

import (
	"context"
	"fmt"

	"sst/internal/config"
	"sst/internal/stats"
)

// CoreScalingResult is the core-scaling study's Result: the rendered table
// plus Efficiency[app][cores] = parallel efficiency.
type CoreScalingResult struct {
	TableResult
	Efficiency map[string]map[int]float64
}

// CoreScalingStudy is the Fig. 2 analogue: hold total work fixed, vary the
// number of cores sharing one node's memory system, and report parallel
// efficiency (T1 / (n·Tn)). Memory-bandwidth-bound phases (the solver)
// lose efficiency as cores contend for DRAM; compute-bound phases (the
// FEA-like assembly) scale nearly ideally — the effect the original
// cores-per-node methodology measures.
func CoreScalingStudy(apps []string, coreCounts []int, scale Scale, opts SweepOptions) (*CoreScalingResult, error) {
	t := stats.NewTable("Fig 2: effect of cores per node on solver and FEA phases",
		"phase", "cores", "runtime_ms", "speedup", "efficiency")
	eff := map[string]map[int]float64{}
	// Each app × core-count cell is an independent node simulation; fan
	// them out and derive speedup/efficiency in row order afterwards.
	nc := len(coreCounts)
	flat := make([]*NodeResult, len(apps)*nc)
	_, err := runPointsDetailed(opts, len(flat), func(ctx context.Context, i int) error {
		app, cores := apps[i/nc], coreCounts[i%nc]
		cfg := SweepMachine(app, "ddr3-1333", 4, scale)
		cfg.Name = fmt.Sprintf("%s-%dc", app, cores)
		cfg.Node.Cores = cores
		res, err := runMachinePoint(ctx, opts, cfg)
		if err != nil {
			return fmt.Errorf("core: scaling %s/%d: %w", app, cores, err)
		}
		flat[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ai, app := range apps {
		eff[app] = map[int]float64{}
		t1 := flat[ai*nc].Seconds * float64(coreCounts[0])
		for ci, cores := range coreCounts {
			res := flat[ai*nc+ci]
			speedup := t1 / res.Seconds
			e := speedup / float64(cores)
			eff[app][cores] = e
			t.AddRow(app, cores, res.Seconds*1e3, speedup, e)
		}
	}
	return &CoreScalingResult{TableResult: TableResult{Tab: t}, Efficiency: eff}, nil
}

// CacheResult is the cache study's Result: the rendered table plus
// Results[app] = the full node result behind each row.
type CacheResult struct {
	TableResult
	Results map[string]*NodeResult
}

// CacheStudy is the Fig. 4 analogue: L1/L2 hit rates of the FEA-like and
// solver phases. The assembly phase lives in L1; the solver streams and
// shows much weaker outer-level locality.
func CacheStudy(scale Scale, opts SweepOptions) (*CacheResult, error) {
	t := stats.NewTable("Fig 4: cache behavior of the FEA and solver phases",
		"phase", "l1_hit_rate", "l2_hit_rate", "dram_MB")
	out := map[string]*NodeResult{}
	apps := []string{"fea", "hpccg"}
	cfgs := make([]*config.MachineConfig, len(apps))
	for i, app := range apps {
		cfg := SweepMachine(app, "ddr3-1333", 4, scale)
		// Measure raw locality: the stream prefetcher would convert the
		// solver's compulsory misses into hits and mask the contrast.
		cfg.Node.L1.Prefetch = false
		cfg.Node.L2.Prefetch = false
		cfgs[i] = cfg
	}
	results, err := RunMachines(cfgs, opts)
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		res := results[i]
		out[app] = res
		t.AddRow(app, res.L1HitRate, res.L2HitRate, float64(res.MemBytes)/1e6)
	}
	return &CacheResult{TableResult: TableResult{Tab: t}, Results: out}, nil
}
