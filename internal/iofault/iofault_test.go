package iofault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestMemFSDurabilityModel pins the model's rules: un-fsync'd bytes are
// volatile, fsync'd bytes survive, entries need a parent-dir fsync, and
// a rename without one may revert.
func TestMemFSDurabilityModel(t *testing.T) {
	m := NewMemFS(1)
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Entry not dir-fsync'd: worst case loses the file entirely.
	img := m.CrashImage(DropUnsynced)
	if _, err := img.ReadFile("d/a"); !os.IsNotExist(err) {
		t.Fatalf("un-dir-fsync'd entry survived worst-case crash: %v", err)
	}
	// Lucky case keeps everything.
	if got, _ := m.CrashImage(RetainAll).ReadFile("d/a"); string(got) != "durable+volatile" {
		t.Fatalf("retain-all content = %q", got)
	}

	// After SyncDir the entry survives, with only the fsync'd prefix.
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	got, err := m.CrashImage(DropUnsynced).ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("worst-case content = %q, want the fsync'd prefix only", got)
	}
	// Torn-tail variant keeps the entry and part of the volatile tail.
	torn, err := m.CrashImage(TornTail).ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) < len("durable") || len(torn) > len("durable+volatile") {
		t.Fatalf("torn-tail content %q outside [synced, full]", torn)
	}
}

// TestMemFSRenameDurability: rename is atomic but volatile until the
// parent's SyncDir — the exact bug class the shared atomic writer fixes.
func TestMemFSRenameDurability(t *testing.T) {
	m := NewMemFS(1)
	write := func(p, s string) {
		t.Helper()
		f, err := m.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(f, s)
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	write("target", "old")
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	write("target.tmp", "new")
	if err := m.Rename("target.tmp", "target"); err != nil {
		t.Fatal(err)
	}

	// No dir fsync: worst case shows the old binding under the target name.
	img := m.CrashImage(DropUnsynced)
	if got, _ := img.ReadFile("target"); string(got) != "old" {
		t.Fatalf("un-synced rename already durable: target = %q", got)
	}
	if err := m.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	img = m.CrashImage(DropUnsynced)
	if got, _ := img.ReadFile("target"); string(got) != "new" {
		t.Fatalf("dir-fsync'd rename lost: target = %q", got)
	}
	if _, err := img.ReadFile("target.tmp"); !os.IsNotExist(err) {
		t.Fatalf("renamed-away temp file still present: %v", err)
	}
}

// TestMemFSScheduledFaults: FailOp injects a short write + ENOSPC at an
// exact op, an fsync error at another, and CrashAfter kills everything
// past its point.
func TestMemFSScheduledFaults(t *testing.T) {
	m := NewMemFS(7)
	m.FailOp(2, ErrNoSpace)  // op 2: the write below
	m.FailOp(4, ErrSyncFailed)

	f, _ := m.Create("a") // op 1
	payload := []byte("0123456789")
	n, err := f.Write(payload) // op 2: short write + ENOSPC
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("scheduled write error = %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("failing write landed %d of %d bytes — not short", n, len(payload))
	}
	raw, _ := m.ReadFile("a")
	if len(raw) != n || !bytes.Equal(raw, payload[:n]) {
		t.Fatalf("file holds %q after short write of %d", raw, n)
	}
	if _, err := f.Write(payload); err != nil { // op 3 fine
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) { // op 4
		t.Fatalf("scheduled sync error = %v", err)
	}

	m.CrashAfter(m.Ops())
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if err := m.SyncDir("."); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir = %v", err)
	}
	if _, err := m.ReadFile("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read = %v", err)
	}
}

// TestMemFSShortWritesDeterministic: the same seed tears failing writes
// at the same offsets.
func TestMemFSShortWritesDeterministic(t *testing.T) {
	run := func(seed uint64) []byte {
		m := NewMemFS(seed)
		m.FailOp(2, ErrNoSpace)
		f, _ := m.Create("a")
		f.Write(bytes.Repeat([]byte("x"), 100))
		raw, _ := m.ReadFile("a")
		return raw
	}
	if a, b := run(3), run(3); !bytes.Equal(a, b) {
		t.Fatalf("same seed, different tears: %d vs %d bytes", len(a), len(b))
	}
}

// TestMemFSReadDir mirrors the os.ReadDir shape the service's recovery
// scan relies on: directories flagged as such, names sorted.
func TestMemFSReadDir(t *testing.T) {
	m := NewMemFS(1)
	m.MkdirAll("jobs/j2")
	m.MkdirAll("jobs/j1")
	f, _ := m.Create("jobs/stray")
	f.Close()
	ents, err := m.ReadDir("jobs")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range ents {
		got = append(got, fmt.Sprintf("%s:%v", e.Name(), e.IsDir()))
	}
	want := []string{"j1:true", "j2:true", "stray:false"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ReadDir = %v, want %v", got, want)
	}
}

// TestDiskRoundTrip smoke-tests the production FS, including SyncDir on
// a real directory and the atomic replace helper.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.json")
	if err := WriteFileAtomic(Disk, p, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(Disk, p, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	raw, err := Disk.ReadFile(p)
	if err != nil || string(raw) != "v2" {
		t.Fatalf("read back %q, %v", raw, err)
	}
	if _, err := os.Stat(p + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	f, err := Disk.OpenAppend(p)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "+tail")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := Disk.Truncate(p, 2); err != nil {
		t.Fatal(err)
	}
	raw, _ = Disk.ReadFile(p)
	if string(raw) != "v2" {
		t.Fatalf("after append+truncate: %q", raw)
	}
	ents, err := Disk.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

// TestCrashPointsAtomicWrite is the generic surface every marker file
// (spec.json, status.json, result.csv, snapshots) rides on: replacing a
// file via WriteFileAtomic must, at every crash point and retention,
// leave either the complete old content or the complete new content
// under the target name — never a torn file, and once v1 was durably in
// place, never nothing.
func TestCrashPointsAtomicWrite(t *testing.T) {
	v1 := []byte(`{"version":1,"pad":"xxxxxxxxxxxxxxxx"}`)
	v2 := []byte(`{"version":2,"pad":"yyyyyyyyyyyyyyyy"}`)
	setup := func() (*MemFS, error) {
		m := NewMemFS(11)
		if err := m.MkdirAll("state"); err != nil {
			return nil, err
		}
		if err := m.SyncDir("."); err != nil {
			return nil, err
		}
		// v1 is durably in place before the workload starts: the atomic
		// writer fsyncs the file and the parent directory.
		if err := WriteFileAtomic(m, "state/marker.json", v1); err != nil {
			return nil, err
		}
		return m, nil
	}
	n, err := Explore(setup,
		func(m *MemFS) error { return WriteFileAtomic(m, "state/marker.json", v2) },
		func(cp CrashPoint) error {
			if cp.WorkloadErr != nil && !errors.Is(cp.WorkloadErr, ErrCrashed) {
				return fmt.Errorf("crashed workload error is untyped: %v", cp.WorkloadErr)
			}
			got, err := cp.Image.ReadFile("state/marker.json")
			if err != nil {
				return fmt.Errorf("marker lost: %v\n%s", err, cp.Image.Dump())
			}
			if !bytes.Equal(got, v1) && !bytes.Equal(got, v2) {
				return fmt.Errorf("marker torn: %q", got)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// create, write, sync, rename, syncdir (+ remove on no path here) = 5.
	if n < 5 {
		t.Fatalf("explored %d ops, expected the full create/write/sync/rename/syncdir chain", n)
	}
}

// TestExploreRejectsEmptyWorkload: a workload that never touches the
// filesystem is a harness bug, not a passing test.
func TestExploreRejectsEmptyWorkload(t *testing.T) {
	_, err := Explore(
		func() (*MemFS, error) { return NewMemFS(1), nil },
		func(*MemFS) error { return nil },
		func(CrashPoint) error { return nil })
	if err == nil {
		t.Fatal("empty workload explored successfully")
	}
}
