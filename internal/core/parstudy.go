package core

import (
	"fmt"
	"time"

	"sst/internal/par"
	"sst/internal/sim"
	"sst/internal/stats"
)

// The parallel-simulation study exercises the poster's scalability claim:
// the same multi-node model is partitioned over 1..N ranks and the host
// wall-clock time per simulated event is measured, under both conservative
// synchronization modes. On a multi-core host the windows execute
// concurrently; on any host the study also verifies that neither the
// partitioning nor the sync mode changes the event count (bit-level
// determinism is covered by internal/par's tests).

// latticeNode is a self-driving model node: it burns host CPU per event
// (standing in for component model code) and exchanges messages with its
// ring neighbor.
type latticeNode struct {
	name     string
	out      *sim.Port
	received uint64
	sink     float64
}

func (l *latticeNode) Name() string { return l.name }

func (l *latticeNode) recv(payload any) {
	l.received++
}

// burn is the stand-in for component model code: a fixed dose of host CPU
// per handled event.
func (l *latticeNode) burn() {
	for k := 0; k < 60; k++ {
		l.sink += float64(k) * 1.0000001
	}
}

// BuildLattice partitions `nodes` ring-connected nodes over the runner and
// starts their event chains: each node processes one compute event per
// eventSpacing and one neighbor message per linkLatency. All links share
// one latency, so it exercises the uniform-lookahead case.
func BuildLattice(r *par.Runner, nodes int, eventSpacing, linkLatency sim.Time) ([]*latticeNode, error) {
	nranks := r.NumRanks()
	type half struct{ a, b *sim.Port }
	halves := make([]half, nodes)
	for i := 0; i < nodes; i++ {
		ra := i % nranks
		rb := ((i + 1) % nodes) % nranks
		a, b, err := r.Connect(fmt.Sprintf("lat%d", i), linkLatency, ra, rb)
		if err != nil {
			return nil, err
		}
		halves[i] = half{a, b}
	}
	out := make([]*latticeNode, nodes)
	for i := 0; i < nodes; i++ {
		n := &latticeNode{name: fmt.Sprintf("node%d", i), out: halves[i].a}
		halves[(i-1+nodes)%nodes].b.SetHandler(n.recv)
		rk := r.Rank(i % nranks)
		rk.Add(n)
		eng := rk.Engine()
		node := n
		var work sim.Handler
		sends := sim.Time(0)
		work = func(any) {
			node.burn()
			sends += eventSpacing
			if sends >= linkLatency {
				sends = 0
				node.out.Send(node.received)
			}
			eng.Schedule(eventSpacing, work, nil)
		}
		eng.Schedule(sim.Time(i%7), work, nil)
	}
	return out, nil
}

// Heterogeneous lattice constants: a duty-cycled chatty pair coupled by
// one tight link plus a bursty periphery on links an order of magnitude
// slower. This is the configuration where topology-aware (pairwise) sync
// beats a global window: the tight link pins the global lookahead to
// tightLat for every rank forever, while pairwise horizons are computed
// from next-event times — so whenever the chatty pair is in the quiet part
// of its duty cycle, periphery ranks get windows sized by their slow
// inbound links and run a whole burst per dispatch instead of crawling
// through it tightLat at a time.
const (
	hetTightLat   = 250 * sim.Nanosecond
	hetSlowLat    = 2 * sim.Microsecond
	hetChatStep   = 2 * sim.Nanosecond   // chatty pair compute-event spacing
	hetChatOn     = 5 * sim.Microsecond  // chatty active slice per period
	hetChatPeriod = 20 * sim.Microsecond // chatty duty-cycle period
	hetBurstLen   = 16                   // events per periphery burst
	hetBurstStep  = 50 * sim.Nanosecond
	hetBurstGap   = 8 * sim.Microsecond // burst start to next burst start
)

// BuildLatticeHetero partitions a heterogeneous-latency lattice over the
// runner: nodes 0 and 1 exchange messages every tightLat across the one
// tight link and run dense compute events, while the remaining nodes sit
// on slow ring links and wake only for short event bursts.
func BuildLatticeHetero(r *par.Runner, nodes int) ([]*latticeNode, error) {
	if nodes < 4 {
		return nil, fmt.Errorf("core: heterogeneous lattice needs at least 4 nodes, got %d", nodes)
	}
	nranks := r.NumRanks()
	type half struct{ a, b *sim.Port }
	halves := make([]half, nodes)
	for i := 0; i < nodes; i++ {
		lat := hetSlowLat
		if i == 0 {
			lat = hetTightLat // the node0-node1 link
		}
		ra := i % nranks
		rb := ((i + 1) % nodes) % nranks
		a, b, err := r.Connect(fmt.Sprintf("het%d", i), lat, ra, rb)
		if err != nil {
			return nil, err
		}
		halves[i] = half{a, b}
	}
	out := make([]*latticeNode, nodes)
	for i := 0; i < nodes; i++ {
		out[i] = &latticeNode{name: fmt.Sprintf("node%d", i), out: halves[i].a}
		halves[(i-1+nodes)%nodes].b.SetHandler(out[i].recv)
		r.Rank(i % nranks).Add(out[i])
	}
	// The chatty pair: dense local events, a message across the tight link
	// every tightLat, active hetChatOn out of every hetChatPeriod. Node 1
	// replies on the tight link's far port rather than its slow ring
	// out-port, so the chat stays on the 250ns path. The quiet stretch is
	// what the pairwise horizons exploit: the pair's next events sit a
	// whole period ahead, so it stops capping everyone else's windows.
	halves[0].a.SetHandler(out[0].recv) // node 1 -> node 0 replies
	chat := func(i int, port *sim.Port, start sim.Time) {
		node := out[i]
		eng := r.Rank(i % nranks).Engine()
		per := int(hetTightLat / hetChatStep)
		count := 0
		var work sim.Handler
		work = func(any) {
			node.burn()
			count++
			if count%per == 0 {
				port.Send(node.received)
			}
			if phase := eng.Now() % hetChatPeriod; phase+hetChatStep >= hetChatOn {
				eng.Schedule(hetChatPeriod-phase, work, nil)
				return
			}
			eng.Schedule(hetChatStep, work, nil)
		}
		eng.Schedule(start, work, nil)
	}
	chat(0, halves[0].a, 0)
	chat(1, halves[0].b, sim.Nanosecond)
	// The periphery: hetBurstLen events spaced hetBurstStep, one ring
	// message at the end of each burst, then silence until the next burst.
	for i := 2; i < nodes; i++ {
		node := out[i]
		eng := r.Rank(i % nranks).Engine()
		k := 0
		var burst sim.Handler
		burst = func(any) {
			node.burn()
			k++
			if k%hetBurstLen == 0 {
				node.out.Send(node.received)
				eng.Schedule(hetBurstGap-sim.Time(hetBurstLen-1)*hetBurstStep, burst, nil)
				return
			}
			eng.Schedule(hetBurstStep, burst, nil)
		}
		eng.Schedule(sim.Time(i%7)*sim.Nanosecond, burst, nil)
	}
	return out, nil
}

// ParallelScalingResult is the parallel-scaling study's Result: the
// rendered table plus, per rank count, the host wall time and the total
// dispatched window count under each sync mode. WallSeconds refers to the
// default (pairwise) mode.
type ParallelScalingResult struct {
	TableResult
	WallSeconds       map[int]float64
	WallSecondsGlobal map[int]float64
	Windows           map[int]uint64
	WindowsGlobal     map[int]uint64
}

// ParallelScalingStudy runs the heterogeneous lattice at each rank count
// for the given simulated horizon under both sync modes, reporting host
// wall time, dispatched windows and simulated events. The event count must
// be invariant across every (ranks, mode) cell, and on multi-rank runs the
// pairwise mode must not dispatch more windows than the global mode — both
// are checked here, not just reported.
//
// Unlike the design-space sweeps this study stays sequential on purpose:
// each point measures host wall-clock and already spawns one goroutine per
// rank, so running points through the sweep worker pool would contend for
// cores and corrupt the very timings being reported. opts.Workers is
// therefore ignored; opts.Context is still consulted between points so a
// cancelled sweep stops promptly.
func ParallelScalingStudy(rankCounts []int, nodes int, horizon sim.Time, opts SweepOptions) (*ParallelScalingResult, error) {
	t := stats.NewTable(
		fmt.Sprintf("Parallel simulation scaling: %d-node heterogeneous lattice, %v horizon", nodes, horizon),
		"ranks", "events", "wall_ms_global", "wall_ms_pairwise", "windows_global", "windows_pairwise", "speedup_vs_1rank")
	ctx := opts.context()
	res := &ParallelScalingResult{
		WallSeconds:       map[int]float64{},
		WallSecondsGlobal: map[int]float64{},
		Windows:           map[int]uint64{},
		WindowsGlobal:     map[int]uint64{},
	}
	type cell struct {
		wall    float64
		windows uint64
		events  uint64
	}
	run := func(nr int, mode par.SyncMode) (cell, error) {
		r, err := par.NewRunner(nr)
		if err != nil {
			return cell{}, err
		}
		r.SetSyncMode(mode)
		if _, err := BuildLatticeHetero(r, nodes); err != nil {
			return cell{}, err
		}
		start := time.Now()
		events, err := r.Run(horizon)
		if err != nil {
			return cell{}, err
		}
		w := time.Since(start).Seconds()
		var dispatched uint64
		for _, rk := range r.Metrics().Ranks {
			dispatched += rk.Windows
		}
		return cell{wall: w, windows: dispatched, events: events}, nil
	}
	var base float64
	var baseEvents uint64
	for _, nr := range rankCounts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: parallel scaling study cancelled: %w", err)
		}
		g, err := run(nr, par.SyncGlobal)
		if err != nil {
			return nil, err
		}
		p, err := run(nr, par.SyncPairwise)
		if err != nil {
			return nil, err
		}
		if nr == rankCounts[0] {
			base = p.wall
			baseEvents = p.events
		}
		if g.events != baseEvents || p.events != baseEvents {
			return nil, fmt.Errorf("core: partitioning or sync mode changed event count at %d ranks: global %d, pairwise %d, reference %d",
				nr, g.events, p.events, baseEvents)
		}
		if nr > 1 && p.windows > g.windows {
			return nil, fmt.Errorf("core: pairwise sync dispatched more windows than global at %d ranks: %d vs %d",
				nr, p.windows, g.windows)
		}
		res.WallSeconds[nr] = p.wall
		res.WallSecondsGlobal[nr] = g.wall
		res.Windows[nr] = p.windows
		res.WindowsGlobal[nr] = g.windows
		t.AddRow(nr, p.events, g.wall*1e3, p.wall*1e3, g.windows, p.windows, base/p.wall)
	}
	res.TableResult = TableResult{Tab: t}
	return res, nil
}
