package power

import (
	"fmt"
	"math"
)

// CostParams models silicon manufacturing cost: dies per wafer from die
// area, yield from defect density (negative-binomial/Murphy model), plus
// packaging and test. This is the IC-Knowledge-style model the design-space
// study used for its performance-per-dollar axis.
type CostParams struct {
	// WaferDiameterMM is the wafer size (300 for a 300 mm line).
	WaferDiameterMM float64
	// WaferCostUSD is the processed-wafer cost.
	WaferCostUSD float64
	// DefectsPerMM2 is the defect density D0.
	DefectsPerMM2 float64
	// ClusterAlpha is the defect clustering parameter (negative
	// binomial); 3 is typical.
	ClusterAlpha float64
	// PackageTestUSD is added per good die.
	PackageTestUSD float64
	// Markup converts manufacturing cost to market price (vendors sell
	// silicon at several times cost); applied by DieCostUSD.
	Markup float64
}

// DefaultCostParams resembles a mature mid-2000s 300 mm process.
func DefaultCostParams() CostParams {
	return CostParams{
		WaferDiameterMM: 300,
		WaferCostUSD:    3500,
		DefectsPerMM2:   0.002, // 0.2 per cm²
		ClusterAlpha:    3,
		PackageTestUSD:  10,
		Markup:          8,
	}
}

// Validate checks ranges.
func (c *CostParams) Validate() error {
	if c.WaferDiameterMM <= 0 || c.WaferCostUSD <= 0 {
		return fmt.Errorf("power: wafer parameters must be positive")
	}
	if c.ClusterAlpha <= 0 {
		c.ClusterAlpha = 3
	}
	if c.Markup <= 0 {
		c.Markup = 1
	}
	return nil
}

// DiesPerWafer uses the standard geometric approximation: usable dies fall
// off both with area and with edge loss.
func (c CostParams) DiesPerWafer(dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 0
	}
	d := c.WaferDiameterMM
	n := math.Pi*d*d/4/dieAreaMM2 - math.Pi*d/math.Sqrt(2*dieAreaMM2)
	if n < 0 {
		return 0
	}
	return n
}

// Yield returns the fraction of good dies for the given area
// (negative-binomial model: (1 + A·D0/α)^-α).
func (c CostParams) Yield(dieAreaMM2 float64) float64 {
	return math.Pow(1+dieAreaMM2*c.DefectsPerMM2/c.ClusterAlpha, -c.ClusterAlpha)
}

// DieCostUSD returns the market price of one good die: manufacturing cost
// (wafer amortized over good dies, plus package/test) times the markup.
func (c CostParams) DieCostUSD(dieAreaMM2 float64) float64 {
	dies := c.DiesPerWafer(dieAreaMM2)
	if dies <= 0 {
		return math.Inf(1)
	}
	good := dies * c.Yield(dieAreaMM2)
	if good <= 0 {
		return math.Inf(1)
	}
	markup := c.Markup
	if markup <= 0 {
		markup = 1
	}
	return (c.WaferCostUSD/good + c.PackageTestUSD) * markup
}

// MemoryCostUSD prices a memory subsystem.
func MemoryCostUSD(dollarsPerGB float64, capacityGB float64) float64 {
	return dollarsPerGB * capacityGB
}

// NodeBudget aggregates a whole node's power and cost for
// efficiency-frontier reports.
type NodeBudget struct {
	CoreEnergyJ float64
	MemEnergyJ  float64
	Seconds     float64

	ChipCostUSD float64
	MemCostUSD  float64
}

// TotalEnergyJ returns core + memory energy.
func (b NodeBudget) TotalEnergyJ() float64 { return b.CoreEnergyJ + b.MemEnergyJ }

// AvgPowerW returns average node power over the run.
func (b NodeBudget) AvgPowerW() float64 {
	if b.Seconds == 0 {
		return 0
	}
	return b.TotalEnergyJ() / b.Seconds
}

// TotalCostUSD returns chip + memory cost.
func (b NodeBudget) TotalCostUSD() float64 { return b.ChipCostUSD + b.MemCostUSD }

// PerfPerWatt converts a work metric (e.g. ops or iterations per second)
// into work per watt.
func (b NodeBudget) PerfPerWatt(workPerSecond float64) float64 {
	p := b.AvgPowerW()
	if p == 0 {
		return 0
	}
	return workPerSecond / p
}

// PerfPerDollar converts a work metric into work per dollar of hardware.
func (b NodeBudget) PerfPerDollar(workPerSecond float64) float64 {
	c := b.TotalCostUSD()
	if c == 0 {
		return 0
	}
	return workPerSecond / c
}
