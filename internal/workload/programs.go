package workload

import (
	"fmt"

	"sst/internal/frontend"
	"sst/internal/isa"
)

// SR1 program library: real assembly programs for the execution-driven
// front-end. Unlike the kernel streams, these execute actual instructions
// with data-dependent control flow and addresses through the interpreter,
// so they validate the whole execution-driven path (and double as
// assembler/ISA regression tests).

// Program bundles an SR1 source with its parameters and result checker.
type Program struct {
	Name string
	// Source is the SR1 assembly text.
	Source string
	// Check validates architectural results after a run (may be nil).
	Check func(m *isa.Machine) error
}

// Build assembles the program and returns a fresh machine.
func (p *Program) Build() (*isa.Machine, error) {
	prog, err := isa.Assemble(p.Source)
	if err != nil {
		return nil, fmt.Errorf("workload: assemble %s: %w", p.Name, err)
	}
	return isa.NewMachine(prog), nil
}

// Stream assembles the program and wraps it as an execution-driven stream.
func (p *Program) Stream(maxInstrs uint64) (*frontend.ExecStream, error) {
	m, err := p.Build()
	if err != nil {
		return nil, err
	}
	return frontend.NewExecStream(m, maxInstrs), nil
}

// DAXPYProgram computes y[i] += a*x[i] over n elements.
// x at 0x10000, y at 0x20000; a = 3.0 written as integer-converted floats.
func DAXPYProgram(n int) *Program {
	src := fmt.Sprintf(`
	# daxpy: y[i] = y[i] + a*x[i], n=%d
		addi r1, r0, 3
		cvtif r1, r1, r0      # a = 3.0
		li   r2, 0x10000      # x
		li   r3, 0x20000      # y
		addi r4, r0, 0        # i
		li   r5, %d           # n
	init:                      # x[i] = 1.0, y[i] = 2.0
		addi r6, r0, 1
		cvtif r6, r6, r0
		sd   r6, 0(r2)
		addi r7, r0, 2
		cvtif r7, r7, r0
		sd   r7, 0(r3)
		addi r2, r2, 8
		addi r3, r3, 8
		addi r4, r4, 1
		blt  r4, r5, init
		li   r2, 0x10000
		li   r3, 0x20000
		addi r4, r0, 0
	loop:
		ld   r8, 0(r2)        # x[i]
		ld   r9, 0(r3)        # y[i]
		mv   r10, r9
		fmadd r10, r1, r8     # y[i] + a*x[i]
		sd   r10, 0(r3)
		addi r2, r2, 8
		addi r3, r3, 8
		addi r4, r4, 1
		blt  r4, r5, loop
		halt
	`, n, n)
	return &Program{
		Name:   fmt.Sprintf("daxpy-%d", n),
		Source: src,
		Check: func(m *isa.Machine) error {
			// y[i] = 2 + 3*1 = 5 everywhere.
			for _, i := range []int{0, n / 2, n - 1} {
				if got := m.LoadFloat(0x20000 + uint64(i*8)); got != 5 {
					return fmt.Errorf("daxpy: y[%d] = %v, want 5", i, got)
				}
			}
			return nil
		},
	}
}

// DotProductProgram computes sum(x[i]*y[i]) with x[i]=i, y[i]=2 and stores
// the float result at `out`.
func DotProductProgram(n int) *Program {
	src := fmt.Sprintf(`
	# dot: sum x[i]*y[i], x[i]=i, y[i]=2, n=%d
		li   r2, 0x10000
		li   r3, 0x20000
		addi r4, r0, 0
		li   r5, %d
	init:
		cvtif r6, r4, r0
		sd   r6, 0(r2)
		addi r7, r0, 2
		cvtif r7, r7, r0
		sd   r7, 0(r3)
		addi r2, r2, 8
		addi r3, r3, 8
		addi r4, r4, 1
		blt  r4, r5, init
		li   r2, 0x10000
		li   r3, 0x20000
		addi r4, r0, 0
		addi r8, r0, 0
		cvtif r8, r8, r0      # acc = 0.0
	loop:
		ld   r9, 0(r2)
		ld   r10, 0(r3)
		fmadd r8, r9, r10
		addi r2, r2, 8
		addi r3, r3, 8
		addi r4, r4, 1
		blt  r4, r5, loop
		li   r11, out
		sd   r8, 0(r11)
		halt
		.word out, 0
	`, n, n)
	return &Program{
		Name:   fmt.Sprintf("dot-%d", n),
		Source: src,
		Check: func(m *isa.Machine) error {
			prog, _ := isa.Assemble(src)
			want := float64(n*(n-1)) / 2 * 2 // 2*sum(i)
			got := m.LoadFloat(prog.Labels["out"])
			if got != want {
				return fmt.Errorf("dot: %v, want %v", got, want)
			}
			return nil
		},
	}
}

// PointerChaseProgram builds a pseudo-random cycle of n pointers (8-byte
// links starting at 0x100000) and walks it `steps` times — the
// latency-bound workload no prefetcher can help.
func PointerChaseProgram(n, steps int) *Program {
	src := fmt.Sprintf(`
	# pointer chase: build a stride-permutation cycle, then walk it.
	# node i links to (i + 7919) %% n  (7919 prime => single cycle when
	# gcd(7919,n)=1; choose n accordingly).
		li   r2, 0x100000     # base
		addi r4, r0, 0        # i
		li   r5, %d           # n
		li   r6, 7919
	build:
		add  r7, r4, r6       # i + prime
	mod:                       # r7 %%= n (subtractive; r7 < 2n here... loop anyway)
		blt  r7, r5, moddone
		sub  r7, r7, r5
		b    mod
	moddone:
		slli r8, r7, 3
		add  r8, r8, r2       # &link[target]
		slli r9, r4, 3
		add  r9, r9, r2       # &link[i]
		sd   r8, 0(r9)        # link[i] = &link[target]
		addi r4, r4, 1
		blt  r4, r5, build
		mv   r10, r2          # cursor
		addi r4, r0, 0
		li   r5, %d           # steps
	walk:
		ld   r10, 0(r10)      # cursor = *cursor
		addi r4, r4, 1
		blt  r4, r5, walk
		li   r11, out
		sd   r10, 0(r11)
		halt
		.word out, 0
	`, n, steps)
	return &Program{
		Name:   fmt.Sprintf("chase-%d-%d", n, steps),
		Source: src,
		Check: func(m *isa.Machine) error {
			prog, _ := isa.Assemble(src)
			got := m.Load(prog.Labels["out"], 8)
			if got < 0x100000 || got >= 0x100000+uint64(n*8) {
				return fmt.Errorf("chase: cursor %#x escaped the table", got)
			}
			return nil
		},
	}
}

// FibonacciProgram computes fib(n) iteratively into r1 — a pure
// control-flow/integer program for predictor studies.
func FibonacciProgram(n int) *Program {
	src := fmt.Sprintf(`
	# fib(%d) iteratively
		addi r1, r0, 0        # fib(0)
		addi r2, r0, 1        # fib(1)
		addi r3, r0, 0        # i
		li   r4, %d
		beq  r4, r0, done
	loop:
		add  r5, r1, r2
		mv   r1, r2
		mv   r2, r5
		addi r3, r3, 1
		blt  r3, r4, loop
	done:
		halt
	`, n, n)
	fib := func(k int) uint64 {
		a, b := uint64(0), uint64(1)
		for i := 0; i < k; i++ {
			a, b = b, a+b
		}
		return a
	}
	return &Program{
		Name:   fmt.Sprintf("fib-%d", n),
		Source: src,
		Check: func(m *isa.Machine) error {
			if got := m.Reg(1); got != fib(n) {
				return fmt.Errorf("fib(%d) = %d, want %d", n, got, fib(n))
			}
			return nil
		},
	}
}

// Programs returns the full SR1 program library.
func Programs() []*Program {
	return []*Program{
		DAXPYProgram(256),
		DotProductProgram(256),
		PointerChaseProgram(1024, 4096),
		FibonacciProgram(40),
	}
}
